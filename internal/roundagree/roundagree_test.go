package roundagree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ftss/internal/core"
	"ftss/internal/failure"
	"ftss/internal/history"
	"ftss/internal/proc"
	"ftss/internal/sim/round"
)

func TestCleanRunLockstep(t *testing.T) {
	cs, ps := Procs(4)
	e := round.MustNewEngine(ps, nil)
	e.Run(10)
	for _, c := range cs {
		// Starting at 1, after 10 rounds of unanimous max+1 the clock is 11.
		if c.Clock() != 11 {
			t.Errorf("%v clock = %d, want 11", c.ID(), c.Clock())
		}
	}
}

func TestCorruptedClocksAgreeAfterOneRound(t *testing.T) {
	cs, ps := Procs(3)
	cs[0].CorruptTo(1000)
	cs[1].CorruptTo(3)
	cs[2].CorruptTo(500000)
	e := round.MustNewEngine(ps, nil)
	e.Step()
	want := uint64(500001)
	for _, c := range cs {
		if c.Clock() != want {
			t.Errorf("%v clock = %d, want %d", c.ID(), c.Clock(), want)
		}
	}
}

func TestMaxAdoptionIncludesSelf(t *testing.T) {
	// A process whose own clock is the maximum keeps it (plus one) even if
	// everyone else is behind.
	cs, ps := Procs(2)
	cs[0].CorruptTo(99)
	cs[1].CorruptTo(1)
	e := round.MustNewEngine(ps, nil)
	e.Step()
	if cs[0].Clock() != 100 || cs[1].Clock() != 100 {
		t.Errorf("clocks = %d,%d, want 100,100", cs[0].Clock(), cs[1].Clock())
	}
}

func TestNewAt(t *testing.T) {
	p := NewAt(2, 77)
	if p.ID() != 2 || p.Clock() != 77 {
		t.Errorf("NewAt = %v/%d", p.ID(), p.Clock())
	}
	if s := p.Snapshot(); s.Clock != 77 || s.Halted {
		t.Errorf("Snapshot = %+v", s)
	}
}

func TestCorruptBounded(t *testing.T) {
	p := New(0)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		p.Corrupt(rng)
		if p.Clock() >= MaxCorruptClock {
			t.Fatalf("corrupted clock %d exceeds bound", p.Clock())
		}
	}
}

// runFTSS executes the Figure 1 protocol with the given adversary and
// corruption plan and returns the recorded history.
func runFTSS(n int, adv failure.Adversary, rounds int, corruptSeed int64) *history.History {
	cs, ps := Procs(n)
	if corruptSeed != 0 {
		rng := rand.New(rand.NewSource(corruptSeed))
		for _, c := range cs {
			c.Corrupt(rng)
		}
	}
	var faulty proc.Set
	if adv != nil {
		faulty = adv.Faulty()
	}
	h := history.New(n, faulty)
	e := round.MustNewEngine(ps, adv)
	e.Observe(h)
	e.Run(rounds)
	return h
}

// TestTheorem3FTSSSolvesWithStab1 is the headline property: for random
// corruptions and random general-omission adversaries, Figure 1
// ftss-solves round agreement with stabilization time 1 (Theorem 3).
func TestTheorem3FTSSSolvesWithStab1(t *testing.T) {
	sigma := core.RoundAgreement{}
	for _, n := range []int{2, 3, 5, 8} {
		for seed := int64(1); seed <= 40; seed++ {
			faulty := proc.NewSet()
			nf := int(seed) % n // 0..n-1 faulty processes
			for i := 0; i < nf; i++ {
				faulty.Add(proc.ID(i * 2 % n))
			}
			adv := failure.NewRandom(failure.GeneralOmission, faulty, 0.35, seed, 20)
			h := runFTSS(n, adv, 40, seed*31+7)
			if err := core.CheckFTSS(h, sigma, 1); err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
		}
	}
}

// TestTheorem3SendOmissionOnly and the receive-omission variant pin the
// individual failure classes.
func TestTheorem3SendOmissionOnly(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		adv := failure.NewRandom(failure.SendOmission, proc.NewSet(0, 1), 0.5, seed, 0)
		h := runFTSS(4, adv, 30, seed)
		if err := core.CheckFTSS(h, core.RoundAgreement{}, 1); err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
	}
}

func TestTheorem3ReceiveOmissionOnly(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		adv := failure.NewRandom(failure.ReceiveOmission, proc.NewSet(2, 3), 0.5, seed, 0)
		h := runFTSS(4, adv, 30, seed)
		if err := core.CheckFTSS(h, core.RoundAgreement{}, 1); err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
	}
}

func TestTheorem3WithCrashes(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		adv := failure.NewRandom(failure.Crash, proc.NewSet(1, 2), 0, seed, 15)
		h := runFTSS(5, adv, 30, seed)
		if err := core.CheckFTSS(h, core.RoundAgreement{}, 1); err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
	}
}

// TestTheorem3MidRunCorruption re-corrupts all processes mid-run: the
// protocol must re-stabilize within one round of the next coterie-stable
// interval. We check the measured stabilization of the final segment.
func TestTheorem3MidRunCorruption(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		cs, ps := Procs(4)
		h := history.New(4, proc.NewSet())
		e := round.MustNewEngine(ps, nil)
		e.Observe(h)
		e.Run(5)
		rng := rand.New(rand.NewSource(seed))
		for _, c := range cs {
			c.Corrupt(rng)
		}
		e.Run(10)

		// All correct; after the mid-run corruption clocks re-agree at the
		// start of the second post-corruption round and stay in lockstep.
		for r := 7; r <= 15; r++ {
			var ref uint64
			for i, c := range cs {
				snap, _ := h.SnapshotAt(r, c.ID())
				if i == 0 {
					ref = snap.Clock
				} else if snap.Clock != ref {
					t.Fatalf("seed=%d round=%d: clock %d != %d", seed, r, snap.Clock, ref)
				}
			}
		}
	}
}

// TestStabilizationExactlyOne measures that one round is not only
// sufficient (Theorem 3) but generally necessary: with corrupted clocks the
// system does not agree at round 1.
func TestStabilizationExactlyOne(t *testing.T) {
	h := runFTSS(6, nil, 12, 99)
	m := core.MeasureStabilization(h, core.RoundAgreement{})
	if m.Rounds != 1 {
		t.Errorf("measured stabilization = %d, want 1", m.Rounds)
	}
}

// TestConvergencePropertyQuick drives random corruption vectors through a
// failure-free round and checks the one-round agreement property directly.
func TestConvergencePropertyQuick(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 16 {
			raw = raw[:16]
		}
		n := len(raw)
		cs, ps := Procs(n)
		for i, v := range raw {
			cs[i].CorruptTo(uint64(v))
		}
		e := round.MustNewEngine(ps, nil)
		e.Step()
		want := cs[0].Clock()
		for _, c := range cs {
			if c.Clock() != want {
				return false
			}
		}
		// The agreed clock is max+1 of the corrupted inputs.
		var max uint64
		for _, v := range raw {
			if uint64(v) > max {
				max = uint64(v)
			}
		}
		return want == max+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestClockMonotoneProperty: under any failures, an alive process's clock
// strictly increases each round (max includes self, then +1).
func TestClockMonotoneProperty(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		adv := failure.NewRandom(failure.GeneralOmission, proc.NewSet(0, 1, 2), 0.6, seed, 0)
		cs, ps := Procs(5)
		rng := rand.New(rand.NewSource(seed))
		for _, c := range cs {
			c.Corrupt(rng)
		}
		e := round.MustNewEngine(ps, adv)
		prev := make([]uint64, 5)
		for i, c := range cs {
			prev[i] = c.Clock()
		}
		for r := 0; r < 20; r++ {
			e.Step()
			for i, c := range cs {
				if c.Clock() <= prev[i] {
					t.Fatalf("seed=%d: clock of %v not increasing: %d → %d",
						seed, c.ID(), prev[i], c.Clock())
				}
				prev[i] = c.Clock()
			}
		}
	}
}

func TestUniformHaltsWhenBehind(t *testing.T) {
	us := []*Uniform{NewUniformAt(0, 5), NewUniformAt(1, 50)}
	ps := []round.Process{us[0], us[1]}
	e := round.MustNewEngine(ps, nil)
	e.Step()
	if !us[0].Halted() {
		t.Error("behind process must halt (self-check)")
	}
	if us[1].Halted() {
		t.Error("ahead process must not halt")
	}
	if us[1].Clock() != 51 {
		t.Errorf("ahead clock = %d, want 51", us[1].Clock())
	}
}

func TestUniformHaltedStaysSilent(t *testing.T) {
	us := []*Uniform{NewUniformAt(0, 5), NewUniformAt(1, 50)}
	ps := []round.Process{us[0], us[1]}
	e := round.MustNewEngine(ps, nil)
	e.Run(3)
	if us[0].StartRound() != nil {
		t.Error("halted process must broadcast nothing")
	}
	if got := us[0].Clock(); got != 5 {
		t.Errorf("halted clock moved: %d", got)
	}
}

func TestUniformCleanRunNeverHalts(t *testing.T) {
	us := []*Uniform{NewUniform(0), NewUniform(1), NewUniform(2)}
	ps := []round.Process{us[0], us[1], us[2]}
	e := round.MustNewEngine(ps, nil)
	e.Run(10)
	for _, u := range us {
		if u.Halted() {
			t.Errorf("%v halted on a clean run", u.ID())
		}
		if u.Clock() != 11 {
			t.Errorf("%v clock = %d, want 11", u.ID(), u.Clock())
		}
	}
}

// TestTheorem2TwoScenarios is the executable version of the Theorem 2
// argument: the same self-checking discipline that satisfies uniformity
// when the laggard is faulty necessarily halts a correct process in the
// indistinguishable corrupted-start execution, violating agreement forever.
func TestTheorem2TwoScenarios(t *testing.T) {
	// Scenario 1: p0 faulty and silent, clocks differ. p0 never halts nor
	// agrees — uniformity needs p0 to halt, which it can only do upon
	// evidence it never receives. (The protocol is "honest": it halts on
	// evidence. A protocol halting WITHOUT evidence moves the violation to
	// scenario 2.)
	us := []*Uniform{NewUniformAt(0, 3), NewUniformAt(1, 900)}
	adv := failure.NewScripted(0).SilenceBetween(0, 1, 1, 50)
	h := history.New(2, adv.Faulty())
	e := round.MustNewEngine(ps2(us), adv)
	e.Observe(h)
	e.Run(10)
	if err := core.CheckFTSS(h, core.And{core.RoundAgreement{}, core.Uniformity{}}, 1); err == nil {
		t.Error("scenario 1: uniform protocol unexpectedly satisfied Σ with uniformity")
	}

	// Scenario 2: both correct, corrupted clocks. The self-check halts the
	// laggard p0 — a correct process — and agreement is violated for the
	// rest of time even though the coterie is stable.
	us = []*Uniform{NewUniformAt(0, 3), NewUniformAt(1, 900)}
	h = history.New(2, proc.NewSet())
	e = round.MustNewEngine(ps2(us), nil)
	e.Observe(h)
	e.Run(10)
	if !us[0].Halted() {
		t.Fatal("scenario 2: correct p0 should have self-halted")
	}
	if err := core.CheckFTSS(h, core.RoundAgreement{}, 1); err == nil {
		t.Error("scenario 2: agreement should be violated forever after the halt")
	}
}

func ps2(us []*Uniform) []round.Process {
	ps := make([]round.Process, len(us))
	for i, u := range us {
		ps[i] = u
	}
	return ps
}

// TestTheorem3StaggeredRevelations stresses piece-wise stability with as
// many de-stabilizing events as the adversary can manufacture: several
// hidden faulty processes reveal themselves one by one, each revelation
// falsifying agreement for exactly the one round the definition excuses.
func TestTheorem3StaggeredRevelations(t *testing.T) {
	reveals := map[proc.ID]uint64{1: 6, 3: 12, 4: 20}
	adv := failure.NewStaggeredReveal(reveals)
	cs, ps := Procs(5)
	// Hidden processes carry wildly different corrupted clocks.
	cs[0].CorruptTo(10)
	cs[1].CorruptTo(1_000_000)
	cs[2].CorruptTo(11)
	cs[3].CorruptTo(50_000_000)
	cs[4].CorruptTo(77)
	h := history.New(5, adv.Faulty())
	e := round.MustNewEngine(ps, adv)
	e.Observe(h)
	e.Run(30)

	if err := core.CheckFTSS(h, core.RoundAgreement{}, 1); err != nil {
		t.Fatalf("staggered revelations: %v", err)
	}
	// Each late reveal with a dominating clock is a distinct destabilizing
	// event (the first event is the initial communication at round 1; p4's
	// clock 77 is below the running max by its reveal, so its entry rides
	// on whether it reaches everyone before being relayed — at least the
	// reveals of p1 and p3 must register).
	events := h.DestabilizingRounds()
	if len(events) < 3 {
		t.Errorf("expected ≥3 destabilizing events, got %v", events)
	}
}

// TestTheorem3CombinedAdversary layers staggered reveals with random
// omission noise.
func TestTheorem3CombinedAdversary(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		adv := &failure.Combined{Layers: []failure.Adversary{
			failure.NewStaggeredReveal(map[proc.ID]uint64{1: 8}),
			failure.NewRandom(failure.GeneralOmission, proc.NewSet(2), 0.4, seed, 0),
		}}
		h := runFTSS(5, adv, 30, seed*7)
		if err := core.CheckFTSS(h, core.RoundAgreement{}, 1); err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
	}
}
