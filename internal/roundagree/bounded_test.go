package roundagree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ftss/internal/core"
	"ftss/internal/history"
	"ftss/internal/proc"
	"ftss/internal/sim/round"
)

func TestBoundedAhead(t *testing.T) {
	b := NewBounded(0, 12)
	tests := []struct {
		a, c uint64
		want bool
	}{
		{1, 0, true},   // just ahead
		{5, 0, true},   // within half-window
		{6, 0, false},  // antipodal: not ahead
		{7, 0, false},  // behind
		{0, 7, true},   // wrap-around ahead
		{0, 0, false},  // equal
		{11, 0, false}, // one behind
		{0, 11, true},  // one ahead across the wrap
	}
	for _, tt := range tests {
		if got := b.Ahead(tt.a, tt.c); got != tt.want {
			t.Errorf("Ahead(%d,%d) = %v, want %v", tt.a, tt.c, got, tt.want)
		}
	}
}

func TestBoundedAheadAsymmetricProperty(t *testing.T) {
	// Ahead is asymmetric: never both Ahead(a,b) and Ahead(b,a).
	f := func(a, c uint32, kRaw uint8) bool {
		k := uint64(kRaw%30) + 2
		b := NewBounded(0, k)
		x, y := uint64(a)%k, uint64(c)%k
		return !(b.Ahead(x, y) && b.Ahead(y, x))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBoundedCleanRunStaysAgreed(t *testing.T) {
	cs, ps := BoundedProcs(4, 16)
	e := round.MustNewEngine(ps, nil)
	e.Run(40) // several full wraps of the mod-16 counter
	want := cs[0].Clock()
	for _, c := range cs {
		if c.Clock() != want {
			t.Fatalf("clocks diverged on a clean run: %d vs %d", c.Clock(), want)
		}
	}
	if want != 40%16 {
		t.Errorf("clock = %d, want %d", want, 40%16)
	}
}

func TestBoundedConvergesWithinHalfWindow(t *testing.T) {
	// Corruption that keeps all clocks within a half-window: the circular
	// max is well-defined and one round suffices, like Figure 1.
	cs, ps := BoundedProcs(3, 16)
	cs[0].CorruptTo(3)
	cs[1].CorruptTo(5)
	cs[2].CorruptTo(7)
	e := round.MustNewEngine(ps, nil)
	e.Step()
	for _, c := range cs {
		if c.Clock() != 8 {
			t.Errorf("%v clock = %d, want 8 (adopted 7, then +1)", c.ID(), c.Clock())
		}
	}
}

// TestBoundedAntipodalNeverConverges is the two-process bounded-counter
// failure: clocks half a ring apart are mutually not-ahead, no Condorcet
// winner exists, and both processes spin in place forever.
func TestBoundedAntipodalNeverConverges(t *testing.T) {
	cs, ps := BoundedProcs(2, 12)
	cs[0].CorruptTo(0)
	cs[1].CorruptTo(6)
	h := history.New(2, proc.NewSet())
	e := round.MustNewEngine(ps, nil)
	e.Observe(h)
	e.Run(60) // five full wraps
	if cs[0].Clock() == cs[1].Clock() {
		t.Fatal("antipodal clocks unexpectedly converged")
	}
	// The gap stays exactly K/2 forever.
	gap := (cs[1].Clock() + 12 - cs[0].Clock()) % 12
	if gap != 6 {
		t.Errorf("gap = %d, want 6", gap)
	}
	if err := core.CheckFTSS(h, core.RoundAgreement{}, 1); err == nil {
		t.Error("Definition 2.4 should be violated forever")
	}
	m := core.MeasureStabilization(h, core.RoundAgreement{})
	if m.Rounds != -1 {
		t.Errorf("stabilization = %d, want never", m.Rounds)
	}
}

// TestBoundedCyclicNeverConverges: three clocks evenly spread create a
// cyclic aheadness relation — the rock-paper-scissors configuration.
func TestBoundedCyclicNeverConverges(t *testing.T) {
	cs, ps := BoundedProcs(3, 12)
	cs[0].CorruptTo(0)
	cs[1].CorruptTo(4)
	cs[2].CorruptTo(8)
	e := round.MustNewEngine(ps, nil)
	e.Run(48)
	if cs[0].Clock() == cs[1].Clock() && cs[1].Clock() == cs[2].Clock() {
		t.Fatal("cyclic clocks unexpectedly converged")
	}
	// The even spread is preserved (everyone increments in place).
	g1 := (cs[1].Clock() + 12 - cs[0].Clock()) % 12
	g2 := (cs[2].Clock() + 12 - cs[1].Clock()) % 12
	if g1 != 4 || g2 != 4 {
		t.Errorf("gaps = %d,%d; want 4,4", g1, g2)
	}
}

// TestUnboundedHandlesTheSameScenario: the unbounded Figure 1 protocol
// repairs the exact corruption that kills the bounded variant — the
// paper's reason for requiring unbounded counters.
func TestUnboundedHandlesTheSameScenario(t *testing.T) {
	cs, ps := Procs(2)
	cs[0].CorruptTo(0)
	cs[1].CorruptTo(6)
	e := round.MustNewEngine(ps, nil)
	e.Step()
	if cs[0].Clock() != cs[1].Clock() {
		t.Fatal("Figure 1 should agree after one round")
	}
}

func TestBoundedRandomCorruptionOutcomes(t *testing.T) {
	// Random corruption either converges (within-half-window reachable
	// configurations) or does not, but a converged system must stay
	// converged: once equal, clocks advance in lockstep.
	for seed := int64(1); seed <= 30; seed++ {
		cs, ps := BoundedProcs(3, 16)
		rng := rand.New(rand.NewSource(seed))
		for _, c := range cs {
			c.Corrupt(rng)
		}
		e := round.MustNewEngine(ps, nil)
		converged := -1
		for r := 1; r <= 40; r++ {
			e.Step()
			if cs[0].Clock() == cs[1].Clock() && cs[1].Clock() == cs[2].Clock() {
				converged = r
				break
			}
		}
		if converged < 0 {
			continue // legitimately stuck (cyclic/antipodal corruption)
		}
		e.Run(20)
		if !(cs[0].Clock() == cs[1].Clock() && cs[1].Clock() == cs[2].Clock()) {
			t.Fatalf("seed=%d: re-diverged after converging at round %d", seed, converged)
		}
	}
}

func TestBoundedAccessors(t *testing.T) {
	b := NewBounded(2, 10)
	if b.ID() != 2 || b.Modulus() != 10 || b.Clock() != 0 {
		t.Error("accessors wrong")
	}
	if NewBounded(0, 0).Modulus() != 2 {
		t.Error("modulus floor not applied")
	}
	b.CorruptTo(25)
	if b.Clock() != 5 {
		t.Errorf("CorruptTo should reduce mod K: %d", b.Clock())
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		b.Corrupt(rng)
		if b.Clock() >= 10 {
			t.Fatal("corrupted clock out of ring")
		}
	}
	if s := b.Snapshot(); s.Clock != b.Clock() {
		t.Error("snapshot clock mismatch")
	}
}
