package cluster

import (
	"bytes"
	"testing"
	"time"

	"ftss/internal/chaos"
	"ftss/internal/obs"
	"ftss/internal/proc"
)

func planWith(t *testing.T, seed int64, episodes int) *chaos.Plan {
	t.Helper()
	return chaos.NewPlan(seed, chaos.PlanConfig{
		N: 4, Episodes: episodes,
		EpisodeLen: 100 * time.Millisecond, QuietLen: 200 * time.Millisecond,
	})
}

// firstPartition returns the plan's first partition episode.
func firstPartition(t *testing.T, plan *chaos.Plan) chaos.Episode {
	t.Helper()
	for _, ep := range plan.Episodes {
		if ep.Class == chaos.ClassPartition {
			return ep
		}
	}
	t.Fatal("plan stages no partition")
	return chaos.Episode{}
}

// TestPlanFaultsPartitionSemantics: symmetric partitions sever the
// cross-cut links in both directions; one-way partitions drop only the
// crossing-out direction, via FrameFate, with Severed false.
func TestPlanFaultsPartitionSemantics(t *testing.T) {
	symmetric, oneWay := 0, 0
	for seed := int64(1); seed <= 40 && (symmetric == 0 || oneWay == 0); seed++ {
		plan := planWith(t, seed, 1)
		ep := firstPartition(t, plan)
		part := ep.Net.(chaos.Partition)
		mid := ep.Start + (ep.End-ep.Start)/2
		epoch := time.Now().Add(-mid) // evaluate mid-episode

		var inside, outside proc.ID = -1, -1
		for p := proc.ID(0); p < 4; p++ {
			if part.Side.Has(p) {
				inside = p
			} else {
				outside = p
			}
		}
		if inside < 0 || outside < 0 {
			t.Fatalf("seed %d: degenerate side %v", seed, part.Side)
		}

		fIn := &PlanFaults{Plan: plan, Self: inside, Epoch: epoch}
		fOut := &PlanFaults{Plan: plan, Self: outside, Epoch: epoch}
		if part.OneWay {
			oneWay++
			if fIn.Severed(0, outside) || fOut.Severed(0, inside) {
				t.Errorf("seed %d: one-way partition reported as severed", seed)
			}
			if drop, _ := fIn.FrameFate(0, 1, outside); !drop {
				t.Errorf("seed %d: crossing-out frame survived a one-way partition", seed)
			}
			if drop, _ := fOut.FrameFate(0, 1, inside); drop {
				t.Errorf("seed %d: reverse frame dropped across a one-way partition", seed)
			}
		} else {
			symmetric++
			if !fIn.Severed(0, outside) || !fOut.Severed(0, inside) {
				t.Errorf("seed %d: symmetric partition not severed both ways", seed)
			}
		}
		// Links within the same side never sever.
		for p := proc.ID(0); p < 4; p++ {
			for q := proc.ID(0); q < 4; q++ {
				if p == q || part.Side.Has(p) != part.Side.Has(q) {
					continue
				}
				if (&PlanFaults{Plan: plan, Self: p, Epoch: epoch}).Severed(0, q) {
					t.Errorf("seed %d: same-side link %v→%v severed", seed, p, q)
				}
			}
		}
		// Outside the window nothing is severed or dropped.
		after := &PlanFaults{Plan: plan, Self: inside, Epoch: time.Now().Add(-plan.Horizon())}
		if after.Severed(0, outside) {
			t.Errorf("seed %d: link severed after the episode healed", seed)
		}
	}
	if symmetric == 0 || oneWay == 0 {
		t.Fatalf("40 seeds produced symmetric=%d one-way=%d partitions; want both", symmetric, oneWay)
	}
}

// TestTickFaultsShift: a restarted node's skew windows line up with the
// epoch, not its own start.
func TestTickFaultsShift(t *testing.T) {
	var plan *chaos.Plan
	var skewEp chaos.Episode
	found := false
	for seed := int64(1); seed <= 40 && !found; seed++ {
		plan = planWith(t, seed, 5) // 5 episodes cycle through all classes
		for _, ep := range plan.Episodes {
			if ep.Class == chaos.ClassSkew {
				skewEp, found = ep, true
				break
			}
		}
	}
	if !found {
		t.Fatal("no skew episode in 40 seeds of 5-episode plans")
	}
	victim := skewEp.Victims.Sorted()[0]
	mid := skewEp.Start + (skewEp.End-skewEp.Start)/2

	// A fresh node (Since 0) sees the skew at elapsed=mid.
	fresh := &TickFaults{Plan: plan, Since: 0}
	if s := fresh.TickScale(mid, victim); s <= 1 {
		t.Errorf("fresh node mid-skew scale = %v, want > 1", s)
	}
	// A node restarted at mid sees it immediately (elapsed 0 + shift).
	restarted := &TickFaults{Plan: plan, Since: mid}
	if s := restarted.TickScale(0, victim); s <= 1 {
		t.Errorf("restarted node scale at local 0 = %v, want > 1", s)
	}
	// And Fate always delivers: message chaos belongs to the transport.
	if v := fresh.Fate(mid, 1, 0, 1); v.Drop || v.ExtraDelay != 0 {
		t.Errorf("TickFaults.Fate = %+v, want plain delivery", v)
	}
}

func TestLocalActionsFilterAndRebase(t *testing.T) {
	var plan *chaos.Plan
	var corruptEp chaos.Episode
	found := false
	for seed := int64(1); seed <= 60 && !found; seed++ {
		plan = planWith(t, seed, 5)
		for _, ep := range plan.Episodes {
			if ep.Class == chaos.ClassCorrupt && len(ep.Actions) > 0 {
				corruptEp, found = ep, true
				break
			}
		}
	}
	if !found {
		t.Fatal("no corrupt episode found")
	}
	victim := corruptEp.Actions[0].P
	at := corruptEp.Actions[0].At

	acts := LocalActions(plan, victim, 0)
	if len(acts) == 0 {
		t.Fatalf("victim %v has no local actions", victim)
	}
	for _, a := range acts {
		if a.Kind != chaos.ActCorrupt || a.P != victim {
			t.Errorf("local action %+v: want only self-corruption", a)
		}
	}
	// Rebase: restarting after the strike drops it; before keeps it shifted.
	if after := LocalActions(plan, victim, at+time.Millisecond); len(after) >= len(acts) {
		t.Errorf("restart after the strike still schedules %d actions (was %d)", len(after), len(acts))
	}
	shifted := LocalActions(plan, victim, at-time.Millisecond)
	if len(shifted) == 0 || shifted[0].At != time.Millisecond {
		t.Errorf("rebased action = %+v, want At=1ms", shifted)
	}
	// Every node's local list names only itself.
	for p := proc.ID(0); p < 4; p++ {
		for _, a := range LocalActions(plan, p, 0) {
			if a.P != p {
				t.Errorf("node %v got foreign action %+v", p, a)
			}
		}
	}
}

// TestWriteChaosScheduleDeterministic: the rendered schedule stream is a
// byte-identical pure function of (seed, self) — the acceptance
// criterion's reproducibility artifact.
func TestWriteChaosScheduleDeterministic(t *testing.T) {
	render := func(seed int64, self proc.ID) []byte {
		var buf bytes.Buffer
		WriteChaosSchedule(obs.NewJSONL(&buf), planWith(t, seed, 5), self)
		return buf.Bytes()
	}
	a, b := render(42, 2), render(42, 2)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed rendered different schedule streams")
	}
	if bytes.Equal(render(42, 2), render(43, 2)) {
		t.Error("different seeds rendered identical schedule streams")
	}
	if len(a) == 0 {
		t.Fatal("schedule stream empty")
	}
}
