package cluster

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"ftss/internal/chaos"
	"ftss/internal/core"
	"ftss/internal/history"
	"ftss/internal/proc"
)

// coreCheck is the Definition 2.4 check against the soak Σ.
func coreCheck(h *history.History, budget int) error {
	return core.CheckFTSS(h, chaos.StableAgreement, budget)
}

// PollRecord is one node's decision-register sample at one poll index of
// the cluster-wide grid.
type PollRecord struct {
	Node  proc.ID
	Index uint64
	Cell  chaos.DecisionCell
}

// eventLine is the JSONL shape obs.JSONL writes: fixed keys plus the
// event's flattened integer fields.
type eventLine struct {
	Ev    string `json:"ev"`
	T     uint64 `json:"t"`
	P     int    `json:"p"`
	OK    int64  `json:"ok"`
	Round uint64 `json:"round"`
	Val   int64  `json:"val"`
}

// ParsePolls extracts the node_poll records from one node's JSONL event
// stream, ignoring every other event kind. Malformed lines are an error:
// a truncated stream means the node died mid-write, and the launcher
// should know rather than silently shorten the trace — except a
// truncated final line, which is exactly what a SIGKILL mid-write
// leaves and is tolerated.
func ParsePolls(r io.Reader) ([]PollRecord, error) {
	var out []PollRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var pending error
	for sc.Scan() {
		if pending != nil {
			return nil, pending
		}
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e eventLine
		if err := json.Unmarshal(line, &e); err != nil {
			// Defer the error one line: only a non-final bad line fails.
			pending = fmt.Errorf("cluster: bad event line %q: %w", line, err)
			continue
		}
		if e.Ev != "node_poll" {
			continue
		}
		out = append(out, PollRecord{
			Node:  proc.ID(e.P),
			Index: e.T,
			Cell:  chaos.DecisionCell{OK: e.OK == 1, Round: e.Round, Val: e.Val},
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Reassemble folds per-node poll records into one global Definition 2.4
// history: poll index k becomes observed round k+1, a node with a record
// at k is up, one without is down (killed, partitioned off the grid, or
// not yet started), and each chaos episode inserts a systemic-failure
// mark before the first poll at or after its start — the same bridge
// ftss-soak applies in-process, reconstructed here from the event
// streams of n separate OS processes.
func Reassemble(plan *chaos.Plan, pollEvery time.Duration, records []PollRecord) *chaos.Recorder {
	n := plan.Config.N
	byIndex := make(map[uint64]map[proc.ID]chaos.DecisionCell)
	var max uint64
	for _, r := range records {
		if r.Node < 0 || int(r.Node) >= n {
			continue
		}
		m, ok := byIndex[r.Index]
		if !ok {
			m = make(map[proc.ID]chaos.DecisionCell, n)
			byIndex[r.Index] = m
		}
		m[r.Node] = r.Cell
		if r.Index > max {
			max = r.Index
		}
	}

	// Episode start → first poll index at or after it.
	markAt := make(map[uint64]int)
	for _, ep := range plan.Episodes {
		idx := uint64((ep.Start + pollEvery - 1) / pollEvery)
		markAt[idx]++
	}

	rec := chaos.NewRecorder(n)
	for k := uint64(0); k <= max; k++ {
		for i := 0; i < markAt[k]; i++ {
			rec.Mark()
		}
		cells := byIndex[k]
		if len(cells) == 0 {
			// No node reported this poll (a global stall or a gap in the
			// grid): nothing to observe, but the marks above still count.
			continue
		}
		up := proc.NewSet()
		for p := range cells {
			up.Add(p)
		}
		rec.Observe(up, cells)
	}
	return rec
}

// MeasuredStabilization finds the smallest stabilization budget (in
// polls) under which the reassembled history ftss-solves stable
// agreement, exactly as the in-process soak searches. It returns -1 when
// no budget up to the poll count suffices. The two-pointer streaming scan
// replaces the linear budget search (one full batch check per candidate):
// one pass over the history instead of polls² windows.
func MeasuredStabilization(rec *chaos.Recorder) int {
	b := core.MinimalStabilization(rec.History(), chaos.StableAgreement)
	if uint64(b) > rec.Polls() {
		return -1
	}
	return b
}
