package cluster

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"ftss/internal/obs"
	"ftss/internal/proc"
)

// freeAddrs reserves n loopback ports by listening and closing. The tiny
// race window between close and the node's own bind is acceptable in a
// test against 127.0.0.1.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs
}

// TestThreeNodeLoopbackRun boots three real nodes — separate transports,
// separate runtimes, loopback TCP between them — with no staged chaos,
// and checks the cluster decides, the event streams parse, and the
// reassembled trace passes Definition 2.4 with a measured budget.
func TestThreeNodeLoopbackRun(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a real loopback cluster")
	}
	const (
		n         = 3
		seed      = int64(11)
		quiet     = 600 * time.Millisecond
		pollEvery = 20 * time.Millisecond
	)
	addrs := freeAddrs(t, n)
	peers := func(self proc.ID) map[proc.ID]string {
		m := make(map[proc.ID]string)
		for p := proc.ID(0); p < n; p++ {
			if p != self {
				m[p] = addrs[p]
			}
		}
		return m
	}

	bufs := make([]*bytes.Buffer, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		bufs[i] = &bytes.Buffer{}
		cfg := NodeConfig{
			ID: proc.ID(i), N: n, Seed: seed,
			Listen: addrs[i], Peers: peers(proc.ID(i)),
			QuietLen:  quiet, // no episodes: horizon = lead = quiet
			PollEvery: pollEvery,
			Events:    obs.NewJSONL(bufs[i]),
		}
		wg.Add(1)
		go func(i int, cfg NodeConfig) {
			defer wg.Done()
			errs[i] = RunNode(cfg, nil, io.Discard)
		}(i, cfg)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}

	var all []PollRecord
	for i, buf := range bufs {
		recs, err := ParsePolls(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("node %d stream: %v", i, err)
		}
		if len(recs) == 0 {
			t.Fatalf("node %d emitted no poll records", i)
		}
		final := recs[len(recs)-1]
		if !final.Cell.OK {
			t.Errorf("node %d never decided: final poll %+v", i, final)
		}
		all = append(all, recs...)
	}

	// Every node's final register must agree.
	finals := make(map[proc.ID]PollRecord)
	for _, r := range all {
		if prev, ok := finals[r.Node]; !ok || r.Index > prev.Index {
			finals[r.Node] = r
		}
	}
	var want fmt.Stringer
	for _, r := range finals {
		if want == nil {
			want = r.Cell
		} else if r.Cell.String() != want.String() {
			t.Fatalf("final registers disagree: %v vs %v", r.Cell, want)
		}
	}

	plan := NodeConfig{N: n, Seed: seed, QuietLen: quiet}.Plan()
	rec := Reassemble(plan, pollEvery, all)
	budget := MeasuredStabilization(rec)
	if budget < 0 {
		t.Fatalf("reassembled trace never satisfies Definition 2.4 (polls=%d)", rec.Polls())
	}
	t.Logf("measured stabilization: %d polls of %d", budget, rec.Polls())
}

// TestRunNodeGracefulStop: a stop signal mid-run ends the poll loop
// early, and the node still writes its final snapshot and node_done.
func TestRunNodeGracefulStop(t *testing.T) {
	addrs := freeAddrs(t, 3)
	var buf bytes.Buffer
	var metrics bytes.Buffer
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- RunNode(NodeConfig{
			ID: 0, N: 3, Seed: 3,
			Listen: addrs[0],
			Peers:  map[proc.ID]string{1: addrs[1], 2: addrs[2]},
			// A long quiet horizon the stop must cut short.
			QuietLen:  time.Hour,
			PollEvery: 5 * time.Millisecond,
			Events:    obs.NewJSONL(&buf),
			Metrics:   &metrics,
		}, stop, io.Discard)
	}()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("node did not stop within 5s of the signal")
	}
	out := buf.String()
	if !bytes.Contains(buf.Bytes(), []byte(`"ev":"node_done"`)) {
		t.Errorf("no node_done event in stream:\n%s", out)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"stopped":1`)) {
		t.Errorf("node_done does not record the early stop:\n%s", out)
	}
	if metrics.Len() == 0 {
		t.Error("no final metrics snapshot written")
	}
}

// TestNodeAdminPlane: a node run with AdminAddr serves live /metrics,
// flips /healthz to 200 once its process decides, and tails the event
// stream on /events — all scraped mid-run, not post-mortem.
func TestNodeAdminPlane(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a real loopback cluster")
	}
	const (
		n         = 3
		seed      = int64(11)
		quiet     = 1500 * time.Millisecond
		pollEvery = 20 * time.Millisecond
	)
	addrs := freeAddrs(t, n)
	adminAddr := freeAddrs(t, 1)[0]

	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		cfg := NodeConfig{
			ID: proc.ID(i), N: n, Seed: seed,
			Listen: addrs[i], Peers: map[proc.ID]string{},
			QuietLen:  quiet,
			PollEvery: pollEvery,
		}
		for p := proc.ID(0); p < n; p++ {
			if p != cfg.ID {
				cfg.Peers[p] = addrs[p]
			}
		}
		if i == 0 {
			cfg.AdminAddr = adminAddr
			cfg.Events = obs.NewJSONL(io.Discard)
		}
		wg.Add(1)
		go func(i int, cfg NodeConfig) {
			defer wg.Done()
			errs[i] = RunNode(cfg, nil, io.Discard)
		}(i, cfg)
	}

	get := func(path string) (int, []byte, error) {
		resp, err := http.Get("http://" + adminAddr + path)
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		return resp.StatusCode, body, err
	}
	// The plane comes up with the node; the node is healthy only once
	// its hosted process decides. Poll until both hold or the horizon
	// passes.
	deadline := time.Now().Add(quiet)
	var healthy bool
	for time.Now().Before(deadline) {
		code, body, err := get("/healthz")
		if err == nil && code == 200 {
			if !bytes.Contains(body, []byte("decided ")) {
				t.Fatalf("healthy body lacks the decision line: %q", body)
			}
			healthy = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !healthy {
		t.Fatal("/healthz never reached 200 before the horizon")
	}
	if code, body, err := get("/metrics"); err != nil || code != 200 ||
		!bytes.Contains(body, []byte("counter node.sent")) {
		t.Fatalf("/metrics = %d %v %q", code, err, body)
	}
	if code, body, err := get("/events"); err != nil || code != 200 ||
		!bytes.Contains(body, []byte(`"ev":"node_poll"`)) {
		t.Fatalf("/events = %d %v %q", code, err, body)
	}

	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
}

func TestRunNodeValidation(t *testing.T) {
	if err := RunNode(NodeConfig{ID: 0, N: 2}, nil, io.Discard); err == nil {
		t.Error("n=2 accepted")
	}
	if err := RunNode(NodeConfig{ID: 5, N: 3}, nil, io.Discard); err == nil {
		t.Error("out-of-range id accepted")
	}
}
