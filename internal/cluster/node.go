package cluster

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"ftss/internal/admin"
	"ftss/internal/chaos"
	"ftss/internal/ctcons"
	"ftss/internal/obs"
	"ftss/internal/proc"
	"ftss/internal/sim/async"
	"ftss/internal/sim/live"
	"ftss/internal/wire/transport"
)

// NodeConfig parameterizes one networked node: which member of the
// n-process Π⁺ consensus it hosts and how to reach the rest.
type NodeConfig struct {
	// ID is the hosted process, in 0..N-1.
	ID proc.ID
	// N is the cluster size.
	N int
	// Seed is the cluster-wide seed: chaos schedule, inputs, and backoff
	// jitter all derive from it, identically on every node.
	Seed int64
	// Listen is the local transport address.
	Listen string
	// Peers maps every other process ID to its dial address.
	Peers map[proc.ID]string
	// Episodes, EpisodeLen, QuietLen parameterize the shared chaos plan
	// (zero Episodes = no staged chaos).
	Episodes   int
	EpisodeLen time.Duration
	QuietLen   time.Duration
	// Tick is the process tick interval (default 1ms).
	Tick time.Duration
	// MailboxCap bounds the hosted mailbox; overflow drops oldest.
	MailboxCap int
	// PollEvery is the decision-register sampling interval (default 10ms).
	// Poll k happens at epoch + k·PollEvery, a cluster-wide grid.
	PollEvery time.Duration
	// Since is how far into the shared schedule this incarnation starts:
	// zero for a fresh boot, the elapsed offset for a restart. The node's
	// epoch is start − Since, so chaos windows and poll indexes stay
	// aligned with peers that never died.
	Since time.Duration
	// Corrupt randomizes the process state before it runs — the restart
	// from garbage of §2.1.
	Corrupt bool
	// Events receives the node's telemetry and its node_poll records
	// (nil = none). Poll records are stamped with the poll index, not
	// wall time.
	Events obs.Sink
	// ChaosEvents receives the deterministic schedule stream
	// (WriteChaosSchedule); nil = none.
	ChaosEvents obs.Sink
	// Metrics receives the final registry snapshot on exit (nil = none).
	Metrics io.Writer
	// AdminAddr, when non-empty, serves the live admin plane on that
	// address while the node runs: /metrics is the registry snapshot,
	// /healthz the runtime health plus decision state (503 until the
	// hosted process decides), /events a tail of the Events stream.
	AdminAddr string
}

func (c NodeConfig) withDefaults() NodeConfig {
	if c.Tick <= 0 {
		c.Tick = time.Millisecond
	}
	if c.PollEvery <= 0 {
		c.PollEvery = 10 * time.Millisecond
	}
	return c
}

// Plan derives the chaos schedule this node (and every peer) runs under.
func (c NodeConfig) Plan() *chaos.Plan {
	return chaos.NewPlan(c.Seed, chaos.PlanConfig{
		N: c.N, Episodes: c.Episodes,
		EpisodeLen: c.EpisodeLen, QuietLen: c.QuietLen,
	})
}

// Inputs derives the cluster's input vector from the seed — the same
// derivation ftss-soak uses, done identically on every node so no input
// distribution message is needed.
func Inputs(seed int64, n int) []ctcons.Value {
	rng := rand.New(rand.NewSource(seed))
	inputs := make([]ctcons.Value, n)
	for i := range inputs {
		inputs[i] = ctcons.Value(rng.Int63n(1000))
	}
	return inputs
}

// RunNode boots one node and blocks until the schedule's horizon passes
// or stop fires (graceful shutdown: the final snapshot is still written
// and sinks still see every event emitted so far). Progress and the
// final health/transport report go to w.
func RunNode(cfg NodeConfig, stop <-chan struct{}, w io.Writer) error {
	cfg = cfg.withDefaults()
	if cfg.N < 3 {
		return fmt.Errorf("node: need n ≥ 3, got %d", cfg.N)
	}
	if cfg.ID < 0 || int(cfg.ID) >= cfg.N {
		return fmt.Errorf("node: id %v outside 0..%d", cfg.ID, cfg.N-1)
	}
	plan := cfg.Plan()
	if cfg.ChaosEvents != nil {
		WriteChaosSchedule(cfg.ChaosEvents, plan, cfg.ID)
	}

	sink := obs.Sink(obs.Null{})
	if cfg.Events != nil {
		sink = cfg.Events
	}
	// The admin tail sees the same event stream the Events sink gets, so
	// /events mirrors the on-disk JSONL.
	var tail *admin.Tail
	if cfg.AdminAddr != "" {
		tail = admin.NewTail(0)
		sink = obs.Tee(sink, obs.NewJSONL(tail))
	}
	reg := obs.NewRegistry()
	ins := live.NewInstruments(reg, "node", sink)

	hp := ctcons.NewConstructiveProc(cfg.ID, cfg.N, Inputs(cfg.Seed, cfg.N)[cfg.ID],
		ctcons.Stabilizing(), 5*async.Millisecond, async.Millisecond)
	if cfg.Corrupt {
		hp.Corrupt(rand.New(rand.NewSource(cfg.Seed*7919 ^ int64(cfg.Since))))
	}

	epoch := time.Now().Add(-cfg.Since)
	var tr *transport.Transport
	rt := live.MustNew([]async.Proc{hp}, live.Config{
		Seed:       cfg.Seed + int64(cfg.ID)*101,
		TickEvery:  cfg.Tick,
		N:          cfg.N,
		Router:     func(from, to proc.ID, payload any) { tr.Send(to, payload) },
		Nemesis:    &TickFaults{Plan: plan, Since: cfg.Since},
		MailboxCap: cfg.MailboxCap, Overflow: live.DropOldest,
		Obs: ins,
	})
	tr, err := transport.New(transport.Config{
		Self:   cfg.ID,
		Listen: cfg.Listen,
		Peers:  cfg.Peers,
		Seed:   cfg.Seed,
		Faults: &PlanFaults{Plan: plan, Self: cfg.ID, Epoch: epoch},
		OnMessage: func(from proc.ID, payload any) {
			rt.Inject(from, cfg.ID, payload)
		},
	})
	if err != nil {
		return err
	}
	defer tr.Close()
	rt.Start()
	defer rt.Stop()
	rt.Apply(LocalActions(plan, cfg.ID, cfg.Since), rand.New(rand.NewSource(cfg.Seed*13+int64(cfg.ID))))

	if cfg.AdminAddr != "" {
		adm, err := admin.Start(cfg.AdminAddr, admin.Plane{
			Metrics: reg.Snapshot,
			Health:  func() (bool, []byte) { return nodeHealth(rt, cfg.ID) },
			Tail:    tail,
		})
		if err != nil {
			return err
		}
		defer adm.Close()
		fmt.Fprintf(w, "node %d: admin plane on %s\n", int(cfg.ID), adm.Addr())
	}

	fmt.Fprintf(w, "node %d: seed=%d n=%d listen=%s since=%v horizon=%v\n",
		int(cfg.ID), cfg.Seed, cfg.N, tr.Addr(), cfg.Since, plan.Horizon())

	horizon := plan.Horizon()
	k := uint64(0)
	if cfg.Since > 0 {
		k = uint64((cfg.Since + cfg.PollEvery - 1) / cfg.PollEvery)
	}
	stopped := false
poll:
	for {
		at := epoch.Add(time.Duration(k) * cfg.PollEvery)
		if at.Sub(epoch) >= horizon {
			break
		}
		if wait := time.Until(at); wait > 0 {
			timer := time.NewTimer(wait)
			select {
			case <-timer.C:
			case <-stop:
				timer.Stop()
				stopped = true
				break poll
			}
		} else {
			select {
			case <-stop:
				stopped = true
				break poll
			default:
			}
		}
		var cell chaos.DecisionCell
		if rt.Inspect(cfg.ID, func(p async.Proc) {
			v, r, ok := p.(*ctcons.HeartbeatProc).Decision()
			cell = chaos.DecisionCell{OK: ok, Round: r, Val: int64(v)}
		}) {
			okv := int64(0)
			if cell.OK {
				okv = 1
			}
			sink.Emit(obs.Event{
				Kind: "node_poll", T: k, P: int(cfg.ID),
				Fields: []obs.KV{
					{K: "ok", V: okv},
					{K: "round", V: int64(cell.Round)},
					{K: "val", V: cell.Val},
				},
			})
		}
		k++
	}

	// Final snapshot: health, transport, decision — written on both the
	// natural horizon and a graceful shutdown.
	stats := tr.Stats()
	mirrorStats(reg, stats)
	sink.Emit(obs.Event{Kind: "node_done", T: k, P: int(cfg.ID),
		Fields: []obs.KV{{K: "stopped", V: boolInt(stopped)}}})
	fmt.Fprintf(w, "node %d: %v\n", int(cfg.ID), rt.Health())
	fmt.Fprintf(w, "node %d: %v\n", int(cfg.ID), stats)
	if v, r, ok := decision(rt, cfg.ID); ok {
		fmt.Fprintf(w, "node %d: decided %d@%d\n", int(cfg.ID), v, r)
	} else {
		fmt.Fprintf(w, "node %d: no decision\n", int(cfg.ID))
	}
	if cfg.Metrics != nil {
		if _, err := reg.WriteTo(cfg.Metrics); err != nil {
			return err
		}
	}
	return nil
}

// nodeHealth renders the /healthz body: the live runtime report plus
// the decision register. A node reads healthy only once its hosted
// process has decided — before that (or mid-corruption) the plane
// answers 503, which is exactly when an operator wants the detail.
func nodeHealth(rt *live.Runtime, id proc.ID) (bool, []byte) {
	v, r, ok := decision(rt, id)
	b := []byte(rt.Health().String())
	b = append(b, '\n')
	if ok {
		b = append(b, fmt.Sprintf("decided %d@%d\n", v, r)...)
	} else {
		b = append(b, "no decision\n"...)
	}
	return ok, b
}

func decision(rt *live.Runtime, id proc.ID) (ctcons.Value, uint64, bool) {
	var v ctcons.Value
	var r uint64
	var ok bool
	rt.Inspect(id, func(p async.Proc) { v, r, ok = p.(*ctcons.HeartbeatProc).Decision() })
	return v, r, ok
}

// mirrorStats folds the transport counters into the registry so the
// -metrics snapshot covers the wire layer alongside the runtime.
func mirrorStats(reg *obs.Registry, s transport.Stats) {
	reg.Counter("wire.frames_sent").Add(s.FramesSent)
	reg.Counter("wire.frames_recv").Add(s.FramesRecv)
	reg.Counter("wire.dials").Add(s.Dials)
	reg.Counter("wire.dial_failures").Add(s.DialFailures)
	reg.Counter("wire.conns_accepted").Add(s.ConnsAccepted)
	reg.Counter("wire.drops_queue_full").Add(s.DropsQueueFull)
	reg.Counter("wire.drops_severed").Add(s.DropsSevered)
	reg.Counter("wire.drops_frame_fate").Add(s.DropsFrameFate)
	reg.Counter("wire.drops_disconnected").Add(s.DropsDisconnected)
	reg.Counter("wire.decode_errors").Add(s.DecodeErrors)
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
