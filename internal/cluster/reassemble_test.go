package cluster

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"ftss/internal/chaos"
	"ftss/internal/obs"
	"ftss/internal/proc"
)

// emitPoll writes one node_poll line the way a node does.
func emitPoll(sink obs.Sink, node proc.ID, k uint64, cell chaos.DecisionCell) {
	okv := int64(0)
	if cell.OK {
		okv = 1
	}
	sink.Emit(obs.Event{Kind: "node_poll", T: k, P: int(node),
		Fields: []obs.KV{{K: "ok", V: okv}, {K: "round", V: int64(cell.Round)}, {K: "val", V: cell.Val}}})
}

func TestParsePollsRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := obs.NewJSONL(&buf)
	// Interleave poll records with the other kinds a real stream holds.
	sink.Emit(obs.Event{Kind: "chaos_plan", T: 0, P: 1, Fields: []obs.KV{{K: "seed", V: 9}}})
	emitPoll(sink, 1, 0, chaos.DecisionCell{})
	sink.Emit(obs.Event{Kind: "overflow_drop", T: 123, P: 1})
	emitPoll(sink, 1, 1, chaos.DecisionCell{OK: true, Round: 3, Val: -7})
	sink.Emit(obs.Event{Kind: "node_done", T: 2, P: 1, Fields: []obs.KV{{K: "stopped", V: 0}}})

	recs, err := ParsePolls(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("parsed %d records, want 2: %+v", len(recs), recs)
	}
	if recs[0] != (PollRecord{Node: 1, Index: 0}) {
		t.Errorf("record 0 = %+v", recs[0])
	}
	want := PollRecord{Node: 1, Index: 1, Cell: chaos.DecisionCell{OK: true, Round: 3, Val: -7}}
	if recs[1] != want {
		t.Errorf("record 1 = %+v, want %+v", recs[1], want)
	}
}

func TestParsePollsTruncatedTail(t *testing.T) {
	var buf bytes.Buffer
	sink := obs.NewJSONL(&buf)
	emitPoll(sink, 0, 0, chaos.DecisionCell{OK: true, Round: 1, Val: 5})
	whole := buf.String()
	// A SIGKILL mid-write leaves a torn final line: tolerated.
	torn := whole + `{"ev":"node_poll","t":1,"p":0,"ok"`
	recs, err := ParsePolls(strings.NewReader(torn))
	if err != nil || len(recs) != 1 {
		t.Fatalf("torn tail: recs=%d err=%v, want 1 record and no error", len(recs), err)
	}
	// The same garbage mid-stream is an error: the trace is unreliable.
	bad := torn + "\n" + whole
	if _, err := ParsePolls(strings.NewReader(bad)); err == nil {
		t.Fatal("mid-stream garbage parsed without error")
	}
}

// synthesize builds per-node streams for a 4-node run over the plan:
// every node undecided until decideAt, then all agree; node `down` emits
// nothing in [downFrom, downTo).
func synthesize(t *testing.T, plan *chaos.Plan, pollEvery time.Duration,
	decideAt, downFrom, downTo uint64, down proc.ID) []PollRecord {
	t.Helper()
	polls := uint64(plan.Horizon() / pollEvery)
	var all []PollRecord
	for node := proc.ID(0); node < 4; node++ {
		for k := uint64(0); k < polls; k++ {
			if node == down && k >= downFrom && k < downTo {
				continue
			}
			cell := chaos.DecisionCell{}
			if k >= decideAt {
				cell = chaos.DecisionCell{OK: true, Round: 7, Val: 42}
			}
			all = append(all, PollRecord{Node: node, Index: k, Cell: cell})
		}
	}
	return all
}

func TestReassembleAcceptsStabilizingRun(t *testing.T) {
	plan := planWith(t, 5, 2)
	const pollEvery = 10 * time.Millisecond
	// Decide by poll 2 and hold steady through both episodes; one node is
	// dark for a stretch (killed / partitioned off the grid) — down nodes
	// are simply absent from those polls, not violations.
	recs := synthesize(t, plan, pollEvery, 2, 10, 14, 2)

	rec := Reassemble(plan, pollEvery, recs)
	if rec.Polls() == 0 {
		t.Fatal("no polls recorded")
	}
	budget := MeasuredStabilization(rec)
	if budget < 0 {
		t.Fatal("no stabilization budget accepted a converging run")
	}
	// The only unstable stretch is the two undecided polls at the very
	// start; after every mark the register is already stable, so the
	// measured budget must reflect the prefix, not the whole run.
	if budget > 4 {
		t.Errorf("measured stabilization %d polls, want ≤ 4", budget)
	}
}

func TestReassembleDisagreementInflatesBudget(t *testing.T) {
	plan := planWith(t, 6, 1)
	const pollEvery = 10 * time.Millisecond
	clean := synthesize(t, plan, pollEvery, 2, 0, 0, -1)
	budgetClean := MeasuredStabilization(Reassemble(plan, pollEvery, clean))
	if budgetClean < 0 || budgetClean > 4 {
		t.Fatalf("clean run measured %d polls, want small and accepted", budgetClean)
	}

	// Poison the tail: node 3 flips to a conflicting register at the last
	// poll. Definition 2.4 can only excuse that by treating everything
	// since the last mark as still-stabilizing, so the measured budget
	// must blow up to the distance from the last mark to the end.
	poisoned := append([]PollRecord(nil), clean...)
	last := poisoned[len(poisoned)-1]
	for i := range poisoned {
		if poisoned[i].Node == 3 && poisoned[i].Index == last.Index {
			poisoned[i].Cell = chaos.DecisionCell{OK: true, Round: 9, Val: 1000}
		}
	}
	rec := Reassemble(plan, pollEvery, poisoned)
	budgetBad := MeasuredStabilization(rec)
	markIdx := uint64((plan.Episodes[0].Start + pollEvery - 1) / pollEvery)
	if floor := int(rec.Polls() - markIdx); budgetBad < floor {
		t.Errorf("poisoned run measured %d polls, want ≥ %d (whole final segment)", budgetBad, floor)
	}
	if budgetBad <= budgetClean {
		t.Errorf("disagreement did not inflate the budget: clean=%d poisoned=%d", budgetClean, budgetBad)
	}
}

func TestReassembleCountsMarks(t *testing.T) {
	plan := planWith(t, 7, 3)
	const pollEvery = 10 * time.Millisecond
	recs := synthesize(t, plan, pollEvery, 0, 0, 0, -1)
	rec := Reassemble(plan, pollEvery, recs)
	if marks := rec.History().SystemicFailureMarks(); len(marks) != 3 {
		t.Fatalf("reassembled history has %d systemic marks, want 3 (one per episode)", len(marks))
	}
}
