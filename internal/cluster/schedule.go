// Package cluster is the networked Π⁺ node runtime: it glues one
// compiled constructive consensus process (ctcons.NewConstructiveProc)
// to the framed TCP transport (wire/transport), reuses the live
// supervisor for bounded mailboxes and corruption strikes, derives the
// identical chaos schedule every peer derives from the shared seed, and
// reassembles the per-node event streams back into the paper's
// Definition 2.4 machinery.
//
// Like sim/live, this package is wall-clock territory and deliberately
// outside the determinism contract. What stays deterministic — and is
// pinned by tests — is everything derived from the seed: the chaos plan,
// each node's rendered chaos-event stream, the dial backoff schedule,
// and the input vector. Same seed, same adversary, on every node,
// without any coordination message ever crossing the network.
//
//ftss:conc real processes and timers; lock/channel protocol statically checked
package cluster

import (
	"time"

	"ftss/internal/chaos"
	"ftss/internal/obs"
	"ftss/internal/proc"
)

// PlanFaults adapts a chaos.Plan to the transport's LinkFaults, from the
// point of view of one node. Every node derives the same plan from the
// shared seed, so the cluster enacts one coherent adversary with no
// coordinator:
//
//   - Symmetric partitions sever the connection outright (both sides
//     close and refuse to redial until the window passes).
//   - Asymmetric (one-way) partitions surface as FrameFate drops on the
//     side whose outbound crosses the cut, while the reverse direction
//     flows — the half-open failure real networks produce.
//   - Link chaos becomes per-frame drops and delayed writes.
//
// Elapsed time is measured from Epoch, not from the transport's own
// start, so a node restarted mid-run (with -since) rejoins the same
// schedule its peers are already executing.
type PlanFaults struct {
	Plan  *chaos.Plan
	Self  proc.ID
	Epoch time.Time
}

// Severed implements transport.LinkFaults: true only for symmetric cuts,
// where both directions of the self↔peer link drop.
func (f *PlanFaults) Severed(_ time.Duration, peer proc.ID) bool {
	elapsed := time.Since(f.Epoch)
	for _, ep := range f.Plan.Episodes {
		if ep.Class != chaos.ClassPartition || ep.Net == nil {
			continue
		}
		out := ep.Net.Fate(elapsed, 0, f.Self, peer).Drop
		in := ep.Net.Fate(elapsed, 0, peer, f.Self).Drop
		if out && in {
			return true
		}
	}
	return false
}

// FrameFate implements transport.LinkFaults: the plan's per-message
// verdict for self→to, with extra delay realized as a delayed write.
func (f *PlanFaults) FrameFate(_ time.Duration, seq uint64, to proc.ID) (bool, time.Duration) {
	v := f.Plan.Fate(time.Since(f.Epoch), seq, f.Self, to)
	return v.Drop, v.ExtraDelay
}

// TickFaults exposes only the plan's clock-skew dimension to the local
// live runtime. Message fates always deliver: for a networked node,
// link-level chaos belongs to the transport (self-sends never cross the
// network, so they are exempt — loopback links do not lose frames), but
// tick skew is a property of the process clock and must apply locally.
// Since shifts elapsed time so a restarted node's skew windows line up
// with its peers'.
type TickFaults struct {
	Plan  *chaos.Plan
	Since time.Duration
}

var _ chaos.Nemesis = (*TickFaults)(nil)

// Fate implements chaos.Nemesis: always deliver.
func (t *TickFaults) Fate(time.Duration, uint64, proc.ID, proc.ID) chaos.Verdict {
	return chaos.Deliver()
}

// TickScale implements chaos.Nemesis with the epoch shift applied.
func (t *TickFaults) TickScale(elapsed time.Duration, p proc.ID) float64 {
	return t.Plan.TickScale(elapsed+t.Since, p)
}

// LocalActions filters the plan down to the actions one node executes
// itself: in-place corruption strikes against its own process. Kills and
// restarts are whole-OS-process events and belong to the launcher. The
// offsets are re-based by since so a restarted node schedules only what
// is still ahead of it.
func LocalActions(plan *chaos.Plan, self proc.ID, since time.Duration) []chaos.Action {
	var out []chaos.Action
	for _, act := range plan.Actions() {
		if act.Kind != chaos.ActCorrupt || act.P != self || act.At < since {
			continue
		}
		act.At -= since
		out = append(out, act)
	}
	return out
}

// WriteChaosSchedule renders the node's view of the chaos schedule as a
// JSONL event stream with logical timestamps (plan offsets in µs). The
// output is a pure function of (plan, self): two same-seed runs produce
// byte-identical streams, which is the reproducibility artifact the
// acceptance tests compare. A restarted node appends the identical block
// again — and because the restart schedule itself is seed-derived, the
// whole file stays byte-stable across runs.
func WriteChaosSchedule(sink obs.Sink, plan *chaos.Plan, self proc.ID) {
	sink.Emit(obs.Event{
		Kind: "chaos_plan", T: 0, P: int(self),
		Fields: []obs.KV{
			{K: "seed", V: plan.Seed},
			{K: "n", V: int64(plan.Config.N)},
			{K: "episodes", V: int64(len(plan.Episodes))},
			{K: "horizon_us", V: int64(plan.Horizon() / time.Microsecond)},
		},
	})
	for _, ep := range plan.Episodes {
		sink.Emit(obs.Event{
			Kind: "chaos_episode", T: uint64(ep.Start / time.Microsecond), P: int(self),
			Detail: ep.Class.String() + ": " + ep.Desc,
			Fields: []obs.KV{
				{K: "index", V: int64(ep.Index)},
				{K: "end_us", V: int64(ep.End / time.Microsecond)},
				{K: "victims", V: int64(ep.Victims.Len())},
			},
		})
		for _, act := range ep.Actions {
			corrupt := int64(0)
			if act.CorruptState {
				corrupt = 1
			}
			sink.Emit(obs.Event{
				Kind: "chaos_action", T: uint64(act.At / time.Microsecond), P: int(act.P),
				Detail: act.Kind.String(),
				Fields: []obs.KV{{K: "corrupt", V: corrupt}},
			})
		}
	}
}
