package core

import (
	"fmt"

	"ftss/internal/history"
	"ftss/internal/proc"
)

// CheckFT verifies Definition 2.1 on a recorded history: Σ(H, F(H,Π)) must
// hold for the whole history (process failures permitted, no systemic
// failures assumed — the caller is responsible for having started the run
// in a good state).
func CheckFT(h *history.History, sigma Problem) error {
	return sigma.Check(h, 1, h.Len(), h.Faulty())
}

// CheckSS verifies Definition 2.2 on a recorded history: Σ(H', ∅) must hold
// where H' is the stab-suffix (systemic failures permitted, no process
// failures).
func CheckSS(h *history.History, sigma Problem, stab int) error {
	return sigma.Check(h, stab+1, h.Len(), proc.NewSet())
}

// CheckTentative verifies the rejected Tentative Definition 1:
// Σ(H', F(H,Π)) on the stab-suffix H'. Theorem 1 shows no protocol can meet
// this for any finite stab; the experiments use this checker to exhibit the
// violating scenarios.
func CheckTentative(h *history.History, sigma Problem, stab int) error {
	return sigma.Check(h, stab+1, h.Len(), h.Faulty())
}

// CheckFTSS verifies Definition 2.4 (piece-wise stability) on a recorded
// history: for every maximal coterie-stable segment beginning with a
// de-stabilizing event in round t0, after a grace period of stab rounds the
// problem must hold on every window of the remainder of the segment —
// Σ(rounds t0+stab .. b, F of that prefix) for every b up to the segment
// end.
//
// Note on the formula in the paper: Definition 2.4 as printed constrains
// coterie(H1·H2) = coterie(H1·H2·H3) only. Because the coterie is monotone
// that pins stability during H3 but, read literally, allows the
// de-stabilizing event inside H2 at its very last round, which for
// stab > 1 would demand recovery immediately after the event and
// contradict Theorem 4 (stabilization final_round). We implement the
// reading the paper's informal text and the proof of Theorem 3 use: the
// coterie is unchanged for ≥ stab rounds ("stable for long enough"), then
// Σ holds as long as it remains unchanged. With stab = 1 the two readings
// coincide, and Theorem 3's obligation — agreement from the round after
// the event — is exactly what this checker enforces.
func CheckFTSS(h *history.History, sigma Problem, stab int) error {
	if stab < 1 {
		return fmt.Errorf("stabilization time must be ≥ 1, got %d", stab)
	}
	for _, seg := range h.StableSegments() {
		// The de-stabilizing event happened in round seg.Start (for the
		// initial segment, seg.Start = 0 and there is no event; grace is
		// counted from the beginning of time).
		lo := seg.Start + stab
		if lo < 1 {
			lo = 1
		}
		for b := lo; b <= seg.End; b++ {
			if err := sigma.Check(h, lo, b, h.FaultyUpToView(b)); err != nil {
				return fmt.Errorf("segment [%d,%d] coterie %v: %w",
					seg.Start, seg.End, seg.Coterie, err)
			}
		}
	}
	return nil
}

// StabilizationMeasurement reports how quickly a protocol re-satisfied Σ
// after the final de-stabilizing event of a history.
type StabilizationMeasurement struct {
	// EventRound is the round of the final de-stabilizing event (0 if the
	// coterie never changed).
	EventRound int
	// SatisfiedFrom is the earliest round s ≥ EventRound such that Σ holds
	// on every window [s, b] for b up to the history end. It is −1 if Σ
	// never re-stabilized within the recorded history.
	SatisfiedFrom int
	// Rounds is SatisfiedFrom − EventRound, the measured stabilization
	// time; −1 if never.
	Rounds int
}

// MeasureStabilization finds, for the final coterie-stable segment of h,
// the earliest round from which Σ holds through the end of the history.
// This is the empirical analogue of the paper's stabilization time: the
// theorems bound Rounds by 1 (Theorem 3) or final_round (+final_round for
// corrupted suspect sets; Theorem 4).
func MeasureStabilization(h *history.History, sigma Problem) StabilizationMeasurement {
	segs := h.StableSegments()
	last := segs[len(segs)-1]
	m := StabilizationMeasurement{EventRound: last.Start, SatisfiedFrom: -1, Rounds: -1}

	lo := last.Start
	if lo < 1 {
		lo = 1
	}
	// Find the smallest s in [lo, end] such that all windows [s, b] pass.
	for s := lo; s <= last.End; s++ {
		ok := true
		for b := s; b <= last.End; b++ {
			if sigma.Check(h, s, b, h.FaultyUpToView(b)) != nil {
				ok = false
				break
			}
		}
		if ok {
			m.SatisfiedFrom = s
			m.Rounds = s - last.Start
			return m
		}
	}
	return m
}
