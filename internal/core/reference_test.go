package core

import (
	"math/rand"
	"testing"

	"ftss/internal/failure"
	"ftss/internal/history"
	"ftss/internal/proc"
	"ftss/internal/roundagree"
	"ftss/internal/sim/round"
)

// refCheckFTSS is a brute-force reference implementation of the
// Definition 2.4 checker: it quantifies directly over segment boundaries
// and window ends instead of using StableSegments' incremental structure.
// A boundary is any prefix t where the coterie changed or a systemic
// failure was recorded; for each boundary b and window end e with no
// boundary in (b, e], Σ(rounds b+stab .. e, F_e) must hold.
func refCheckFTSS(h *history.History, sigma Problem, stab int) error {
	boundary := make([]bool, h.Len()+1)
	for t := 1; t <= h.Len(); t++ {
		if !h.CoterieAt(t).Equal(h.CoterieAt(t - 1)) {
			boundary[t] = true
		}
	}
	for _, m := range h.SystemicFailureMarks() {
		if m+1 <= h.Len() {
			boundary[m+1] = true
		}
	}
	for b := 0; b <= h.Len(); b++ {
		if b > 0 && !boundary[b] {
			continue
		}
		lo := b + stab
		if lo < 1 {
			lo = 1
		}
		for e := lo; e <= h.Len(); e++ {
			// Stop at the next boundary.
			broken := false
			for t := b + 1; t <= e; t++ {
				if boundary[t] {
					broken = true
					break
				}
			}
			if broken {
				break
			}
			if err := sigma.Check(h, lo, e, h.FaultyUpTo(e)); err != nil {
				return err
			}
		}
	}
	return nil
}

// TestCheckFTSSAgainstReference cross-validates the production checker
// against the brute-force reference over randomized runs, with and without
// mid-run corruption marks.
func TestCheckFTSSAgainstReference(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		n := 2 + int(seed)%4
		faulty := proc.NewSet()
		if n > 2 {
			faulty.Add(proc.ID(int(seed) % n))
		}
		adv := failure.NewRandom(failure.GeneralOmission, faulty, 0.4, seed, 10)
		cs, ps := roundagree.Procs(n)
		rng := rand.New(rand.NewSource(seed))
		for _, c := range cs {
			c.Corrupt(rng)
		}
		h := history.New(n, faulty)
		e := round.MustNewEngine(ps, adv)
		e.Observe(h)
		e.Run(8)
		if seed%3 == 0 {
			e.Corrupt(rng, proc.NewSet(0))
			h.MarkSystemicFailure()
		}
		e.Run(10)

		for _, stab := range []int{1, 2, 4} {
			got := CheckFTSS(h, RoundAgreement{}, stab)
			want := refCheckFTSS(h, RoundAgreement{}, stab)
			if (got == nil) != (want == nil) {
				t.Fatalf("seed=%d stab=%d: checker=%v reference=%v", seed, stab, got, want)
			}
		}
	}
}

// TestCheckFTSSMarksRestartGrace: a mid-run systemic failure restarts the
// stabilization clock even when the coterie never changes.
func TestCheckFTSSMarksRestartGrace(t *testing.T) {
	cs, ps := roundagree.Procs(3)
	h := history.New(3, proc.NewSet())
	e := round.MustNewEngine(ps, nil)
	e.Observe(h)
	e.Run(5)
	// Corrupt a single process: clocks disagree at round 6, re-agree at 7.
	cs[1].CorruptTo(999_999)
	h.MarkSystemicFailure()
	e.Run(6)

	// Without the mark the disagreement at round 6 would be unexcused:
	// simulate by building an identical history object lacking the mark.
	if err := CheckFTSS(h, RoundAgreement{}, 1); err != nil {
		t.Fatalf("marked history should pass: %v", err)
	}

	cs2, ps2 := roundagree.Procs(3)
	h2 := history.New(3, proc.NewSet())
	e2 := round.MustNewEngine(ps2, nil)
	e2.Observe(h2)
	e2.Run(5)
	cs2[1].CorruptTo(999_999)
	// no MarkSystemicFailure here
	e2.Run(6)
	if err := CheckFTSS(h2, RoundAgreement{}, 1); err == nil {
		t.Fatal("unmarked corruption should violate (no excusing boundary)")
	}
}

// TestUniformityVacuousWhenNoCorrectAlive: with every process faulty the
// condition has no reference clock and is vacuously satisfied.
func TestUniformityVacuousWhenNoCorrectAlive(t *testing.T) {
	adv := failure.NewScripted(0, 1).CrashAt(0, 2).CrashAt(1, 2)
	_, ps := roundagree.Procs(2)
	h := history.New(2, adv.Faulty())
	e := round.MustNewEngine(ps, adv)
	e.Observe(h)
	e.Run(4)
	if err := (Uniformity{}).Check(h, 3, 4, proc.NewSet(0, 1)); err != nil {
		t.Errorf("vacuous uniformity failed: %v", err)
	}
	if err := (RoundAgreement{}).Check(h, 3, 4, proc.NewSet(0, 1)); err != nil {
		t.Errorf("vacuous agreement failed: %v", err)
	}
}

// TestMeasureStabilizationWithMark: the measurement anchors to the mark
// boundary, not only coterie events.
func TestMeasureStabilizationWithMark(t *testing.T) {
	cs, ps := roundagree.Procs(2)
	h := history.New(2, proc.NewSet())
	e := round.MustNewEngine(ps, nil)
	e.Observe(h)
	e.Run(6)
	cs[0].CorruptTo(12345)
	h.MarkSystemicFailure()
	e.Run(8)

	m := MeasureStabilization(h, RoundAgreement{})
	if m.EventRound != 7 {
		t.Errorf("EventRound = %d, want 7 (the post-mark round)", m.EventRound)
	}
	if m.Rounds != 1 {
		t.Errorf("Rounds = %d, want 1", m.Rounds)
	}
}
