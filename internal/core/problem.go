// Package core implements the paper's formal framework (§2.1–§2.2): problem
// predicates over history windows, the Agreement/Rate conditions of
// Assumption 1 and the Uniformity condition of Assumption 2, and the four
// notions of solving a problem — ft-solves (Definition 2.1), ss-solves
// (Definition 2.2), the rejected Tentative Definition 1, and ftss-solves
// (Definition 2.4, piece-wise stability).
//
//ftss:det problem definitions are evaluated inside deterministic replays
package core

import (
	"fmt"

	"ftss/internal/history"
	"ftss/internal/proc"
)

// Problem is the paper's Σ: a predicate on a history (here, a window of a
// recorded history) and a set of faulty processes.
//
// Check evaluates Σ on actual rounds lo..hi (inclusive, 1-based) of h,
// treating `faulty` as F. A window with lo > hi is empty and trivially
// satisfied. Check returns nil if Σ holds and a *Violation otherwise.
//
// Implementations must treat `faulty` as read-only: the solve-checkers
// pass the history's internal set without a defensive copy.
type Problem interface {
	Name() string
	Check(h *history.History, lo, hi int, faulty proc.Set) error
}

// Violation reports where and why a problem predicate failed.
type Violation struct {
	Problem string
	Round   int // actual round at which the violation manifests
	Detail  string
}

// Error implements the error interface.
func (v *Violation) Error() string {
	return fmt.Sprintf("%s violated at round %d: %s", v.Problem, v.Round, v.Detail)
}

// RoundAgreement is Assumption 1: in every round of the window, all correct
// processes agree on the current round number (Agreement), and each correct
// process increments its round number by exactly one at the end of each
// round (Rate).
type RoundAgreement struct{}

// Name implements Problem.
func (RoundAgreement) Name() string { return "round-agreement (Assumption 1)" }

// Check implements Problem. The per-round clauses are split into
// checkAgreement and checkRate so the streaming window in incremental.go
// runs literally the same code in the same order as this batch scan.
func (ra RoundAgreement) Check(h *history.History, lo, hi int, faulty proc.Set) error {
	for r := lo; r <= hi; r++ {
		if err := ra.checkAgreement(h, r, faulty); err != nil {
			return err
		}
		// Rate reads the state at the start of round r+1, so it is only
		// enforced while r+1 is still inside the window: the predicate must
		// not read state beyond the history fragment it is given (H3 in
		// Definition 2.4).
		if r == hi {
			continue
		}
		if err := ra.checkRate(h, r, faulty); err != nil {
			return err
		}
	}
	return nil
}

// checkAgreement: c_p^r equal across correct alive processes. Iterating
// IDs in 0..n−1 order visits the same processes as Alive.Sorted() without
// allocating.
func (RoundAgreement) checkAgreement(h *history.History, r int, faulty proc.Set) error {
	alive := h.AliveAt(r)
	first := proc.None
	var firstClock uint64
	for i := 0; i < h.N(); i++ {
		p := proc.ID(i)
		if !alive.Has(p) || faulty.Has(p) {
			continue
		}
		c, ok := h.ClockAt(r, p)
		if !ok {
			continue
		}
		if first == proc.None {
			first, firstClock = p, c
			continue
		}
		if c != firstClock {
			return &Violation{
				Problem: "agreement",
				Round:   r,
				Detail: fmt.Sprintf("c_%v^%d = %d but c_%v^%d = %d",
					first, r, firstClock, p, r, c),
			}
		}
	}
	return nil
}

// checkRate: c_p^{r+1} = c_p^r + 1 for correct processes alive in round r.
func (RoundAgreement) checkRate(h *history.History, r int, faulty proc.Set) error {
	alive := h.AliveAt(r)
	for i := 0; i < h.N(); i++ {
		p := proc.ID(i)
		if !alive.Has(p) || faulty.Has(p) {
			continue
		}
		before, ok1 := h.ClockAt(r, p)
		after, ok2 := h.ClockAt(r+1, p)
		if !ok1 || !ok2 {
			continue // crashed in between: c undefined from then on
		}
		if after != before+1 {
			return &Violation{
				Problem: "rate",
				Round:   r,
				Detail: fmt.Sprintf("c_%v^%d = %d but c_%v^%d = %d (want %d)",
					p, r, before, p, r+1, after, before+1),
			}
		}
	}
	return nil
}

// Uniformity is Assumption 2 (§2.2): in every round, every faulty process
// has either halted or agrees with the correct processes on the round
// number. Protocols enforcing it "self-check and halt before doing harm";
// Theorem 2 shows such protocols cannot ftss-solve anything.
type Uniformity struct{}

// Name implements Problem.
func (Uniformity) Name() string { return "uniformity (Assumption 2)" }

// Check implements Problem.
func (Uniformity) Check(h *history.History, lo, hi int, faulty proc.Set) error {
	for r := lo; r <= hi; r++ {
		// Reference clock: any correct process's clock.
		ref := proc.None
		var refClock uint64
		for _, p := range h.AliveAt(r).Sorted() {
			if faulty.Has(p) {
				continue
			}
			if c, ok := h.ClockAt(r, p); ok {
				ref, refClock = p, c
				break
			}
		}
		if ref == proc.None {
			continue // no correct process alive; nothing to compare against
		}
		for _, p := range faulty.Sorted() {
			snap, ok := h.SnapshotAt(r, p)
			if !ok {
				continue // crashed counts as halted
			}
			if snap.Halted {
				continue
			}
			if snap.Clock != refClock {
				return &Violation{
					Problem: "uniformity",
					Round:   r,
					Detail: fmt.Sprintf("faulty %v is not halted and c_%v^%d = %d ≠ %d = c_%v^%d",
						p, p, r, snap.Clock, refClock, ref, r),
				}
			}
		}
	}
	return nil
}

// And conjoins problems: the window must satisfy every component.
type And []Problem

// Name implements Problem.
func (a And) Name() string {
	s := "all("
	for i, p := range a {
		if i > 0 {
			s += ", "
		}
		s += p.Name()
	}
	return s + ")"
}

// Check implements Problem.
func (a And) Check(h *history.History, lo, hi int, faulty proc.Set) error {
	for _, p := range a {
		if err := p.Check(h, lo, hi, faulty); err != nil {
			return err
		}
	}
	return nil
}

// Func adapts a function to the Problem interface.
type Func struct {
	ProblemName string
	CheckFunc   func(h *history.History, lo, hi int, faulty proc.Set) error
}

// Name implements Problem.
func (f Func) Name() string { return f.ProblemName }

// Check implements Problem.
func (f Func) Check(h *history.History, lo, hi int, faulty proc.Set) error {
	return f.CheckFunc(h, lo, hi, faulty)
}
