package core

import (
	"errors"
	"math/rand"
	"testing"

	"ftss/internal/failure"
	"ftss/internal/history"
	"ftss/internal/proc"
	"ftss/internal/roundagree"
	"ftss/internal/sim/round"
)

func runAgree(t *testing.T, n int, adv failure.Adversary, rounds int,
	setup func(e *round.Engine, cs []*roundagree.Proc)) *history.History {
	t.Helper()
	cs, ps := roundagree.Procs(n)
	var faulty proc.Set
	if adv != nil {
		faulty = adv.Faulty()
	}
	h := history.New(n, faulty)
	e := round.MustNewEngine(ps, adv)
	if setup != nil {
		setup(e, cs)
	}
	e.Observe(h)
	e.Run(rounds)
	return h
}

func TestRoundAgreementHoldsOnCleanRun(t *testing.T) {
	h := runAgree(t, 3, nil, 10, nil)
	if err := (RoundAgreement{}).Check(h, 1, 10, proc.NewSet()); err != nil {
		t.Errorf("clean run should satisfy Assumption 1: %v", err)
	}
}

func TestRoundAgreementDetectsDisagreement(t *testing.T) {
	h := runAgree(t, 2, nil, 5, func(e *round.Engine, cs []*roundagree.Proc) {
		// Corrupt p1 to a wildly different clock before the run.
		rng := rand.New(rand.NewSource(7))
		cs[1].Corrupt(rng)
	})
	err := (RoundAgreement{}).Check(h, 1, 1, proc.NewSet())
	var v *Violation
	if !errors.As(err, &v) {
		t.Fatalf("expected a Violation for corrupted clocks, got %v", err)
	}
	if v.Problem != "agreement" {
		t.Errorf("violation kind = %q, want agreement", v.Problem)
	}
	if v.Round != 1 {
		t.Errorf("violation round = %d, want 1", v.Round)
	}
}

func TestRoundAgreementRateInsideWindowOnly(t *testing.T) {
	// Corrupted clocks: at the end of round 1 both adopt max+1, so the
	// lower process's clock jumps — a Rate violation on the transition
	// 1→2. It must be reported for windows containing both rounds but not
	// for the window [1,1] (the condition reads state outside it).
	h := runAgree(t, 2, nil, 5, func(e *round.Engine, cs []*roundagree.Proc) {
		cs[0].CorruptTo(100)
		cs[1].CorruptTo(5)
	})
	if err := (RoundAgreement{}).Check(h, 2, 2, proc.NewSet()); err != nil {
		t.Errorf("window [2,2]: clocks agree at start of round 2, got %v", err)
	}
	err := (RoundAgreement{}).Check(h, 1, 2, proc.NewSet())
	var v *Violation
	if !errors.As(err, &v) {
		t.Fatalf("window [1,2] should violate (agreement at round 1): %v", err)
	}
}

func TestRateViolationDetected(t *testing.T) {
	// A faulty process injects a huge clock to one correct process only,
	// making that process's clock jump: rate violation inside a window.
	adv := failure.NewScripted(2).DropSendAt(1, 2, 1).DropSendAt(2, 2, 1)
	h := runAgree(t, 3, adv, 4, func(e *round.Engine, cs []*roundagree.Proc) {
		cs[2].CorruptTo(1000)
	})
	// p0 heard 1000 in round 1 and jumped; p1 did not. Disagreement at
	// round 2 between p0 and p1.
	err := (RoundAgreement{}).Check(h, 2, 2, proc.NewSet(2))
	if err == nil {
		t.Fatal("expected agreement violation at round 2")
	}
	// And p0's transition 1→2 is a rate violation.
	err = (RoundAgreement{}).Check(h, 1, 2, proc.NewSet(1, 2))
	var v *Violation
	if !errors.As(err, &v) || v.Problem != "rate" {
		t.Fatalf("expected rate violation for p0 in [1,2], got %v", err)
	}
}

func TestEmptyWindowTriviallySatisfied(t *testing.T) {
	h := runAgree(t, 2, nil, 3, nil)
	if err := (RoundAgreement{}).Check(h, 3, 2, proc.NewSet()); err != nil {
		t.Errorf("empty window must be satisfied: %v", err)
	}
}

func TestUniformityCheck(t *testing.T) {
	// Uniform processes, p1 faulty and silenced: p1 must halt or agree.
	cs := []*roundagree.Uniform{roundagree.NewUniformAt(0, 10), roundagree.NewUniformAt(1, 3)}
	ps := []round.Process{cs[0], cs[1]}
	adv := failure.NewScripted(1).SilenceBetween(1, 0, 1, 20)
	h := history.New(2, adv.Faulty())
	e := round.MustNewEngine(ps, adv)
	e.Observe(h)
	e.Run(5)

	// p1 never hears p0 so it never self-checks, never halts, and its
	// clock differs from p0's: uniformity is violated.
	err := (Uniformity{}).Check(h, 1, 5, proc.NewSet(1))
	var v *Violation
	if !errors.As(err, &v) || v.Problem != "uniformity" {
		t.Fatalf("expected uniformity violation, got %v", err)
	}
}

func TestUniformitySatisfiedByHalting(t *testing.T) {
	// p1 faulty with a lower clock but hearing p0: it self-checks and
	// halts in round 1, satisfying uniformity.
	cs := []*roundagree.Uniform{roundagree.NewUniformAt(0, 10), roundagree.NewUniformAt(1, 3)}
	ps := []round.Process{cs[0], cs[1]}
	adv := failure.NewScripted(1).DropSendAt(2, 1, 0) // p1 nominally faulty
	h := history.New(2, adv.Faulty())
	e := round.MustNewEngine(ps, adv)
	e.Observe(h)
	e.Run(5)

	if !cs[1].Halted() {
		t.Fatal("p1 should have halted after hearing a higher clock")
	}
	if err := (Uniformity{}).Check(h, 2, 5, proc.NewSet(1)); err != nil {
		t.Errorf("halted faulty process satisfies uniformity: %v", err)
	}
}

func TestAndCombinator(t *testing.T) {
	h := runAgree(t, 2, nil, 4, nil)
	sigma := And{RoundAgreement{}, Uniformity{}}
	if err := sigma.Check(h, 1, 4, proc.NewSet()); err != nil {
		t.Errorf("And on clean run: %v", err)
	}
	if sigma.Name() == "" {
		t.Error("And.Name empty")
	}

	failing := And{RoundAgreement{}, Func{
		ProblemName: "always-false",
		CheckFunc: func(*history.History, int, int, proc.Set) error {
			return &Violation{Problem: "always-false", Round: 1, Detail: "no"}
		},
	}}
	if err := failing.Check(h, 1, 4, proc.NewSet()); err == nil {
		t.Error("And must propagate component failures")
	}
}

func TestFuncAdapter(t *testing.T) {
	called := false
	f := Func{ProblemName: "probe", CheckFunc: func(h *history.History, lo, hi int, faulty proc.Set) error {
		called = true
		if lo != 2 || hi != 3 {
			t.Errorf("window = [%d,%d]", lo, hi)
		}
		return nil
	}}
	if f.Name() != "probe" {
		t.Errorf("Name = %q", f.Name())
	}
	h := runAgree(t, 2, nil, 4, nil)
	if err := f.Check(h, 2, 3, proc.Set{}); err != nil || !called {
		t.Errorf("Check err=%v called=%v", err, called)
	}
}

func TestCheckFT(t *testing.T) {
	h := runAgree(t, 3, nil, 8, nil)
	if err := CheckFT(h, RoundAgreement{}); err != nil {
		t.Errorf("CheckFT on clean good-state run: %v", err)
	}
}

func TestCheckSS(t *testing.T) {
	// Corrupted start, no process failures: Figure 1 ss-solves round
	// agreement with stabilization time 1.
	h := runAgree(t, 3, nil, 8, func(e *round.Engine, cs []*roundagree.Proc) {
		cs[0].CorruptTo(500)
		cs[1].CorruptTo(9)
		cs[2].CorruptTo(77)
	})
	if err := CheckSS(h, RoundAgreement{}, 1); err != nil {
		t.Errorf("CheckSS stab=1: %v", err)
	}
	// Stabilization 0 would require agreement already at round 1: false.
	if err := CheckSS(h, RoundAgreement{}, 0); err == nil {
		t.Error("CheckSS stab=0 should fail for corrupted start")
	}
}

func TestCheckTentativeTheorem1Scenario(t *testing.T) {
	// Theorem 1's scenario: corrupted clocks, p1 faulty and mutually
	// silent with p0 for the first `stab` rounds, then clean. Under the
	// tentative definition, Σ must hold on the stab-suffix with F = {p1};
	// it does not, because the first post-silence round still disagrees.
	for _, stab := range []int{1, 3, 7} {
		adv := failure.NewScripted(1).SilenceBetween(1, 0, 1, uint64(stab))
		h := runAgree(t, 2, adv, stab+5, func(e *round.Engine, cs []*roundagree.Proc) {
			cs[0].CorruptTo(40)
			cs[1].CorruptTo(900)
		})
		if err := CheckTentative(h, RoundAgreement{}, stab); err == nil {
			t.Errorf("stab=%d: tentative definition unexpectedly satisfied", stab)
		}
		// The same history is fine under piece-wise stability with
		// stabilization time 1 (Theorem 3).
		if err := CheckFTSS(h, RoundAgreement{}, 1); err != nil {
			t.Errorf("stab=%d: CheckFTSS failed: %v", stab, err)
		}
	}
}

func TestCheckFTSSRejectsBadStab(t *testing.T) {
	h := runAgree(t, 2, nil, 3, nil)
	if err := CheckFTSS(h, RoundAgreement{}, 0); err == nil {
		t.Error("stab=0 must be rejected")
	}
}

func TestCheckFTSSDetectsPersistentViolation(t *testing.T) {
	// A "protocol" that never repairs disagreement: frozen clocks. Use
	// uniform processes pre-halted... simpler: corrupt one clock and use
	// a no-repair process.
	ps := []round.Process{&frozen{id: 0, clock: 5}, &frozen{id: 1, clock: 9}}
	h := history.New(2, proc.NewSet())
	e := round.MustNewEngine(ps, nil)
	e.Observe(h)
	e.Run(6)
	if err := CheckFTSS(h, RoundAgreement{}, 1); err == nil {
		t.Error("frozen clocks must violate ftss round agreement")
	}
}

// frozen broadcasts but never changes its clock: it violates Rate and
// Agreement forever.
type frozen struct {
	id    proc.ID
	clock uint64
}

func (f *frozen) ID() proc.ID              { return f.id }
func (f *frozen) StartRound() any          { return roundagree.Announce{Clock: f.clock} }
func (f *frozen) EndRound([]round.Message) {}
func (f *frozen) Snapshot() round.Snapshot { return round.Snapshot{Clock: f.clock} }

func TestMeasureStabilization(t *testing.T) {
	h := runAgree(t, 4, nil, 10, func(e *round.Engine, cs []*roundagree.Proc) {
		cs[0].CorruptTo(1_000_000)
		cs[2].CorruptTo(123)
	})
	m := MeasureStabilization(h, RoundAgreement{})
	if m.EventRound != 1 {
		t.Errorf("EventRound = %d, want 1 (first communication)", m.EventRound)
	}
	if m.Rounds != 1 {
		t.Errorf("measured stabilization = %d rounds, want 1 (Theorem 3)", m.Rounds)
	}
	if m.SatisfiedFrom != 2 {
		t.Errorf("SatisfiedFrom = %d, want 2", m.SatisfiedFrom)
	}
}

func TestMeasureStabilizationNeverSatisfied(t *testing.T) {
	ps := []round.Process{&frozen{id: 0, clock: 5}, &frozen{id: 1, clock: 9}}
	h := history.New(2, proc.NewSet())
	e := round.MustNewEngine(ps, nil)
	e.Observe(h)
	e.Run(6)
	m := MeasureStabilization(h, RoundAgreement{})
	if m.Rounds != -1 || m.SatisfiedFrom != -1 {
		t.Errorf("measurement = %+v, want never-satisfied", m)
	}
}

func TestViolationError(t *testing.T) {
	v := &Violation{Problem: "agreement", Round: 3, Detail: "boom"}
	if v.Error() == "" {
		t.Error("empty error string")
	}
}
