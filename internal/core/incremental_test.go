package core

import (
	"math/rand"
	"testing"

	"ftss/internal/failure"
	"ftss/internal/history"
	"ftss/internal/proc"
	"ftss/internal/roundagree"
	"ftss/internal/sim/round"
)

func errString(err error) string {
	if err == nil {
		return "<nil>"
	}
	return err.Error()
}

// genericWrap hides a problem's Streaming implementation behind a Func so
// the differential tests also cover the recheckWindow fallback path.
func genericWrap(p Problem) Problem {
	return Func{ProblemName: p.Name(), CheckFunc: p.Check}
}

// chaosScript drives one seeded chaotic run: random omissions on
// designated-faulty processes (growing the actual faulty set mid-history),
// a scripted crash, systemic corruption with marks (segment boundaries and
// coterie churn), and restarts of the round structure via corruption.
type chaosScript struct {
	seed   int64
	rounds int
}

// run replays the script, calling inspect after every observed round.
func (cs chaosScript) run(t *testing.T, attach func(h *history.History), inspect func(h *history.History, r int)) {
	t.Helper()
	const n = 5
	procs, ps := roundagree.Procs(n)
	adv := failure.NewRandom(failure.GeneralOmission, proc.NewSet(1, 3), 0.35, cs.seed, uint64(cs.rounds))
	// One crash partway through: p3 halts, shrinking the alive set.
	adv.Crashes[3] = uint64(cs.rounds/2 + int(cs.seed%5))
	h := history.New(n, adv.Faulty())
	e := round.MustNewEngine(ps, adv)
	e.Observe(h)
	if attach != nil {
		attach(h)
	}
	rng := rand.New(rand.NewSource(cs.seed * 7))
	for r := 1; r <= cs.rounds; r++ {
		// Seeded systemic chaos between rounds: corrupt a random subset of
		// clocks and mark a de-stabilizing event, or corrupt silently
		// (coterie churn without a mark).
		switch rng.Intn(8) {
		case 0:
			e.CorruptEverything(rng)
			h.MarkSystemicFailure()
		case 1:
			var set proc.Set
			set = proc.NewSet(proc.ID(rng.Intn(n)), proc.ID(rng.Intn(n)))
			e.Corrupt(rng, set)
		case 2:
			procs[rng.Intn(n)].CorruptTo(uint64(rng.Intn(1000)))
			h.MarkSystemicFailure()
		}
		e.Step()
		inspect(h, r)
	}
}

// TestIncrementalMatchesBatchEveryPrefix is the differential property
// test for the tentpole: chaotic seeded histories replayed round by round
// through IncrementalChecker must agree with the batch CheckFTSS /
// MeasureStabilization verdict-for-verdict and measurement-for-
// measurement at every prefix, for streaming problems, streaming
// conjunctions, and the generic (non-streaming) fallback.
func TestIncrementalMatchesBatchEveryPrefix(t *testing.T) {
	sigmas := []struct {
		name  string
		sigma Problem
	}{
		{"round-agreement", RoundAgreement{}},
		{"uniformity", Uniformity{}},
		{"and", And{RoundAgreement{}, Uniformity{}}},
		{"generic-fallback", genericWrap(RoundAgreement{})},
		{"and-mixed", And{genericWrap(Uniformity{}), RoundAgreement{}}},
	}
	stabs := []int{1, 2, 4}
	for seed := int64(1); seed <= 6; seed++ {
		for _, sc := range sigmas {
			var ics []*IncrementalChecker
			script := chaosScript{seed: seed, rounds: 40}
			script.run(t,
				func(h *history.History) {
					for _, stab := range stabs {
						ics = append(ics, NewIncrementalChecker(h, sc.sigma, stab))
					}
				},
				func(h *history.History, r int) {
					for i, stab := range stabs {
						want := errString(CheckFTSS(h, sc.sigma, stab))
						got := errString(ics[i].Verdict())
						if got != want {
							t.Fatalf("seed %d sigma %s stab %d prefix %d:\nincremental: %s\nbatch:       %s",
								seed, sc.name, stab, r, got, want)
						}
						if m, bm := ics[i].Measure(), MeasureStabilization(h, sc.sigma); m != bm {
							t.Fatalf("seed %d sigma %s prefix %d: Measure %+v != batch %+v",
								seed, sc.name, r, m, bm)
						}
					}
				})
		}
	}
}

// TestIncrementalCatchUp attaches the checker to a history that already
// holds rounds: the catch-up pass must land on the same verdict as a
// checker attached from the start.
func TestIncrementalCatchUp(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		script := chaosScript{seed: seed, rounds: 30}
		script.run(t, nil, func(h *history.History, r int) {
			if r%7 != 0 {
				return
			}
			ic := NewIncrementalChecker(h, RoundAgreement{}, 2)
			want := errString(CheckFTSS(h, RoundAgreement{}, 2))
			if got := errString(ic.Verdict()); got != want {
				t.Fatalf("seed %d prefix %d: catch-up verdict %s != batch %s", seed, r, got, want)
			}
		})
	}
}

// TestIncrementalRejectsBadStab mirrors CheckFTSS's stab validation.
func TestIncrementalRejectsBadStab(t *testing.T) {
	h := history.New(2, proc.NewSet())
	ic := NewIncrementalChecker(h, RoundAgreement{}, 0)
	want := errString(CheckFTSS(h, RoundAgreement{}, 0))
	if got := errString(ic.Verdict()); got != want {
		t.Errorf("stab=0 verdict %q, want %q", got, want)
	}
}

// TestIncrementalSegments checks the segment decomposition against
// history.StableSegments.
func TestIncrementalSegments(t *testing.T) {
	script := chaosScript{seed: 4, rounds: 35}
	script.run(t,
		nil,
		func(h *history.History, r int) {
			ic := NewIncrementalChecker(h, RoundAgreement{}, 1)
			segs := ic.Segments()
			want := h.StableSegments()
			if len(segs) != len(want) {
				t.Fatalf("prefix %d: %d segments, want %d", r, len(segs), len(want))
			}
			for i := range segs {
				if segs[i].Start != want[i].Start || segs[i].End != want[i].End ||
					!segs[i].Coterie.Equal(want[i].Coterie) {
					t.Fatalf("prefix %d segment %d: [%d,%d] %v, want [%d,%d] %v",
						r, i, segs[i].Start, segs[i].End, segs[i].Coterie,
						want[i].Start, want[i].End, want[i].Coterie)
				}
			}
		})
}

// TestMinimalStabilizationMatchesLinearOracle compares the two-pointer
// scan against the linear budget scan it replaces: the smallest b with
// CheckFTSS(h, sigma, b) == nil.
func TestMinimalStabilizationMatchesLinearOracle(t *testing.T) {
	sigmas := []struct {
		name  string
		sigma Problem
	}{
		{"round-agreement", RoundAgreement{}},
		{"and", And{RoundAgreement{}, Uniformity{}}},
		{"generic-fallback", genericWrap(RoundAgreement{})},
	}
	for seed := int64(1); seed <= 6; seed++ {
		for _, sc := range sigmas {
			script := chaosScript{seed: seed, rounds: 40}
			script.run(t, nil, func(h *history.History, r int) {
				if r%5 != 0 {
					return
				}
				got := MinimalStabilization(h, sc.sigma)
				oracle := -1
				for b := 1; b <= h.Len()+1; b++ {
					if CheckFTSS(h, sc.sigma, b) == nil {
						oracle = b
						break
					}
				}
				if oracle == -1 {
					t.Fatalf("seed %d prefix %d: no feasible budget up to %d", seed, r, h.Len()+1)
				}
				if got != oracle {
					t.Fatalf("seed %d sigma %s prefix %d: MinimalStabilization = %d, oracle = %d",
						seed, sc.name, r, got, oracle)
				}
			})
		}
	}
}
