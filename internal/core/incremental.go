// Incremental Definition 2.4 checking. CheckFTSS re-evaluates every
// window of every stable segment from scratch — O(T²) problem checks over
// a T-round history — which dominates at soak and cluster scale. The
// machinery here maintains the same verdict one observed round at a time:
// appending round t extends the current segment's window family by one
// window (one streaming problem extension, O(delta)), and de-stabilizing
// events merely reset the per-segment state. Verdicts are byte-identical
// to the batch checker's at every prefix; the differential tests in
// incremental_test.go pin that equivalence round for round.

package core

import (
	"fmt"

	"ftss/internal/history"
	"ftss/internal/proc"
)

// WindowChecker is the streaming form of one Definition 2.4 window
// family: the windows [lo, lo], [lo, lo+1], … of a single stable segment,
// all under one faulty set. Extend(hi) must be called with hi increasing
// by one from lo, and must return exactly what Problem.Check(h, lo, hi,
// faulty) would return, given that every earlier Extend returned nil.
// (The batch checker stops at the first violated window, so the contract
// never requires extending past a failure.)
type WindowChecker interface {
	Extend(hi int) error
}

// Streaming is implemented by Problems whose window verdicts can be
// extended one round at a time instead of recomputed. Problems without it
// are handled by re-running the full Check per extension — correct but
// O(window) per round.
type Streaming interface {
	Problem
	NewWindow(h *history.History, lo int, faulty proc.Set) WindowChecker
}

// NewWindowChecker builds the streaming window for sigma if it supports
// Streaming, and a full-recheck fallback otherwise.
func NewWindowChecker(sigma Problem, h *history.History, lo int, faulty proc.Set) WindowChecker {
	if s, ok := sigma.(Streaming); ok {
		return s.NewWindow(h, lo, faulty)
	}
	return &recheckWindow{h: h, sigma: sigma, lo: lo, faulty: faulty}
}

// recheckWindow is the generic fallback: each extension re-runs the batch
// predicate on the grown window, which is trivially batch-equivalent.
type recheckWindow struct {
	h      *history.History
	sigma  Problem
	lo     int
	faulty proc.Set
}

func (w *recheckWindow) Extend(hi int) error {
	return w.sigma.Check(w.h, w.lo, hi, w.faulty)
}

// --- streaming implementations of the core problems ---

var (
	_ Streaming = RoundAgreement{}
	_ Streaming = Uniformity{}
	_ Streaming = And{}
)

// NewWindow implements Streaming. Extending [lo, hi-1] to [lo, hi] adds
// exactly the Rate check of round hi-1 — whose read of round hi's start
// state was outside the smaller window (H3) — and the Agreement check of
// round hi, in the batch scan's order.
func (RoundAgreement) NewWindow(h *history.History, lo int, faulty proc.Set) WindowChecker {
	return &roundAgreementWindow{h: h, lo: lo, faulty: faulty}
}

type roundAgreementWindow struct {
	h      *history.History
	lo     int
	faulty proc.Set
}

func (w *roundAgreementWindow) Extend(hi int) error {
	if hi > w.lo {
		if err := (RoundAgreement{}).checkRate(w.h, hi-1, w.faulty); err != nil {
			return err
		}
	}
	return (RoundAgreement{}).checkAgreement(w.h, hi, w.faulty)
}

// NewWindow implements Streaming: Uniformity constrains each round
// independently, so extension is a single-round check.
func (Uniformity) NewWindow(h *history.History, lo int, faulty proc.Set) WindowChecker {
	return &uniformityWindow{h: h, faulty: faulty}
}

type uniformityWindow struct {
	h      *history.History
	faulty proc.Set
}

func (w *uniformityWindow) Extend(hi int) error {
	return (Uniformity{}).Check(w.h, hi, hi, w.faulty)
}

// NewWindow implements Streaming: each component streams independently
// (falling back to full rechecks for non-streaming members), extended in
// conjunction order. The first failing component at the first failing
// extension is the batch And's first failing component at its first
// failing window, because the batch checker evaluates windows in
// increasing end order and each component is individually stream-exact.
func (a And) NewWindow(h *history.History, lo int, faulty proc.Set) WindowChecker {
	ws := make([]WindowChecker, len(a))
	for i, p := range a {
		ws[i] = NewWindowChecker(p, h, lo, faulty)
	}
	return andWindow(ws)
}

type andWindow []WindowChecker

func (ws andWindow) Extend(hi int) error {
	for _, w := range ws {
		if err := w.Extend(hi); err != nil {
			return err
		}
	}
	return nil
}

// windowScan drives one segment's window family [lo, b] for increasing b,
// handling the detail the WindowChecker contract fixes away: the batch
// checker judges window [lo, b] under F(b), the faulty set of prefix b,
// which can grow inside a segment. Faulty sets are shared by identity in
// the history, so growth is an O(1) pointer comparison; on growth the
// streaming state is rebuilt by replaying [lo, b-1] under the new set.
// The replay is batch-exact: its check sequence is a prefix of the batch
// scan of window [lo, b] under F(b), so a replay failure is precisely the
// failure Check(h, lo, b, F(b)) would report. F grows at most n times, so
// the amortized cost per append stays O(delta).
type windowScan struct {
	h      *history.History
	sigma  Problem
	lo     int
	win    WindowChecker
	faulty proc.Set
}

// extend folds window [lo, b] into the scan; b must increase by one per
// call starting at lo. It returns what Check(h, lo, b, FaultyUpToView(b))
// returns, given all earlier extends passed.
func (s *windowScan) extend(b int) error {
	faulty := s.h.FaultyUpToView(b)
	if s.win == nil || faulty != s.faulty {
		s.win, s.faulty = NewWindowChecker(s.sigma, s.h, s.lo, faulty), faulty
		for r := s.lo; r < b; r++ {
			if err := s.win.Extend(r); err != nil {
				return err
			}
		}
	}
	return s.win.Extend(b)
}

// --- the incremental Definition 2.4 checker ---

// SegmentResult is the verdict of one maximal coterie-stable segment as
// accumulated by an IncrementalChecker. Err is the first window violation
// inside the segment (unwrapped, as sigma reported it), or nil.
type SegmentResult struct {
	Start, End int
	Coterie    proc.Set
	Err        error
}

// IncrementalChecker maintains the Definition 2.4 verdict of a growing
// history, one observed round at a time. It attaches to the history's
// append hook; each appended round costs one streaming window extension
// plus O(1) boundary bookkeeping, instead of the batch checker's full
// O(T²) re-evaluation. Verdict is byte-identical to CheckFTSS and Measure
// to MeasureStabilization on the history recorded so far — the
// differential tests replay chaotic histories prefix by prefix against
// both. Memory is O(segments + streaming state), independent of history
// length, so soak and cluster harnesses can hold progressive verdicts
// over unbounded runs.
type IncrementalChecker struct {
	h     *history.History
	sigma Problem
	stab  int
	// stabErr mirrors CheckFTSS's rejection of stab < 1.
	stabErr error

	// Open segment.
	segStart   int
	segCoterie proc.Set // clone, for boundary detection and error text
	segErr     error    // first violation inside the open segment
	nextMark   int      // next h.MarkAt index to consume
	scan       windowScan

	// Closed segments, in order.
	closed []SegmentResult
	// firstErr caches the wrapped error of the earliest failed closed
	// segment.
	firstErr error
}

// NewIncrementalChecker builds a checker for sigma with the given
// stabilization budget, catches up on the rounds h already holds, and
// attaches to h so every further ObserveRound extends the verdict.
func NewIncrementalChecker(h *history.History, sigma Problem, stab int) *IncrementalChecker {
	ic := EvalIncremental(h, sigma, stab)
	if ic.stabErr == nil {
		h.OnAppend(ic.append)
	}
	return ic
}

// EvalIncremental builds a checker over the rounds h already holds
// without attaching to its append hook: a one-shot streaming evaluation
// for completed histories (history hooks cannot be detached, so repeated
// one-shot verdicts must not accumulate them).
func EvalIncremental(h *history.History, sigma Problem, stab int) *IncrementalChecker {
	ic := &IncrementalChecker{h: h, sigma: sigma, stab: stab}
	if stab < 1 {
		ic.stabErr = fmt.Errorf("stabilization time must be ≥ 1, got %d", stab)
		return ic
	}
	ic.openSegment(0)
	for t := 1; t <= h.Len(); t++ {
		ic.append(t)
	}
	return ic
}

// openSegment starts the segment whose first prefix is t.
func (ic *IncrementalChecker) openSegment(t int) {
	ic.segStart = t
	ic.segCoterie = ic.h.CoterieAtView(t).Clone()
	ic.segErr = nil
	lo := t + ic.stab
	if lo < 1 {
		lo = 1
	}
	ic.scan = windowScan{h: ic.h, sigma: ic.sigma, lo: lo}
}

// append folds observed round t (the new prefix length) into the verdict.
func (ic *IncrementalChecker) append(t int) {
	if ic.stabErr != nil {
		return
	}
	// De-stabilizing boundary at t: a coterie change, or the first round
	// executed after a recorded systemic mark — the same test
	// history.StableSegments applies.
	boundary := !ic.h.CoterieAtView(t).Equal(ic.segCoterie)
	for ic.nextMark < ic.h.MarkCount() && ic.h.MarkAt(ic.nextMark)+1 <= t {
		boundary = true
		ic.nextMark++
	}
	if boundary {
		ic.closeSegment(t - 1)
		ic.openSegment(t)
	}
	if t < ic.scan.lo || ic.segErr != nil {
		// Inside the grace period, or the segment already failed: the
		// batch checker evaluates no further window of this segment.
		return
	}
	if err := ic.scan.extend(t); err != nil {
		ic.segErr = err
	}
}

func (ic *IncrementalChecker) closeSegment(end int) {
	ic.closed = append(ic.closed, SegmentResult{
		Start: ic.segStart, End: end, Coterie: ic.segCoterie, Err: ic.segErr,
	})
	if ic.firstErr == nil && ic.segErr != nil {
		ic.firstErr = fmt.Errorf("segment [%d,%d] coterie %v: %w",
			ic.segStart, end, ic.segCoterie, ic.segErr)
	}
}

// History returns the history the checker is evaluating.
func (ic *IncrementalChecker) History() *history.History { return ic.h }

// Problem returns the Σ the checker evaluates.
func (ic *IncrementalChecker) Problem() Problem { return ic.sigma }

// Stab returns the stabilization budget the checker enforces.
func (ic *IncrementalChecker) Stab() int { return ic.stab }

// Segments returns the per-segment results accumulated so far, closed
// segments first and the open segment (End = current history length)
// last. It mirrors history.StableSegments with each segment's first
// window violation attached — trace replay renders its event stream
// from it.
func (ic *IncrementalChecker) Segments() []SegmentResult {
	out := make([]SegmentResult, 0, len(ic.closed)+1)
	out = append(out, ic.closed...)
	out = append(out, SegmentResult{
		Start: ic.segStart, End: ic.h.Len(), Coterie: ic.segCoterie, Err: ic.segErr,
	})
	return out
}

// Verdict returns what CheckFTSS(h, sigma, stab) would return on the
// history recorded so far, byte for byte.
func (ic *IncrementalChecker) Verdict() error {
	if ic.stabErr != nil {
		return ic.stabErr
	}
	if ic.firstErr != nil {
		return ic.firstErr
	}
	if ic.segErr != nil {
		return fmt.Errorf("segment [%d,%d] coterie %v: %w",
			ic.segStart, ic.h.Len(), ic.segCoterie, ic.segErr)
	}
	return nil
}

// Measure reports the stabilization measurement of the history recorded
// so far; it equals MeasureStabilization(h, sigma) by construction.
// Unlike Verdict it re-walks the final segment (the measurement
// quantifies over candidate start rounds, which streaming state does not
// retain), so call it at measurement points rather than per round.
func (ic *IncrementalChecker) Measure() StabilizationMeasurement {
	return MeasureStabilization(ic.h, ic.sigma)
}

// MinimalStabilization returns the smallest stabilization budget b ≥ 1
// for which CheckFTSS(h, sigma, b) passes. It replaces the harnesses'
// linear budget scans (one full batch check per candidate budget, O(T³)
// round-checks): each stable segment is scanned once with a two-pointer
// streaming pass, O(T²) worst case and O(T) when the history is
// well-behaved. A budget always exists — once it exceeds a segment's
// length every window of that segment is empty — and equals the max over
// segments of (minimal feasible window start − segment start).
//
// Soundness of the left-pointer advance rests on the same monotonicity
// the linear scan exploited implicitly: a window that satisfies Σ still
// satisfies it after its start moves right, because every problem in this
// repository constrains only rounds inside the window (shrinking it drops
// constraints). Feasibility of the returned budget does not depend on the
// assumption — the final lo's windows were all checked directly. The
// property tests compare against the linear-scan oracle on seeded chaotic
// histories.
func MinimalStabilization(h *history.History, sigma Problem) int {
	best := 1
	for _, seg := range h.StableSegments() {
		lo := seg.Start + 1
		if lo < 1 {
			lo = 1
		}
		sc := &windowScan{h: h, sigma: sigma, lo: lo}
		for x := lo; x <= seg.End; {
			if x < lo {
				// The start moved past x: windows ending before lo do not
				// exist, so resume checking at the window [lo, lo].
				x = lo
				continue
			}
			if sc == nil {
				// lo advanced: replay [lo, x-1] under the fresh start. A
				// replay failure at b means window [lo, b] is violated,
				// so this lo is infeasible too.
				sc = &windowScan{h: h, sigma: sigma, lo: lo}
				failed := false
				for b := lo; b < x; b++ {
					if sc.extend(b) != nil {
						failed = true
						break
					}
				}
				if failed {
					lo++
					sc = nil
					continue
				}
			}
			if sc.extend(x) != nil {
				// [lo, x] fails; by shrink-monotonicity every smaller lo
				// fails at x as well, so advance the start.
				lo++
				sc = nil
				continue
			}
			x++
		}
		if b := lo - seg.Start; b > best {
			best = b
		}
	}
	return best
}
