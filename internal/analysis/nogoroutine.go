package analysis

import "go/ast"

// NoGoroutine forbids go statements in deterministic packages. Goroutine
// scheduling is nondeterministic; the only sanctioned concurrency in the
// det world is a worker pool whose results are merged back in a
// schedule-independent order, and such a file declares itself with a
// file-level //ftss:pool <reason> directive (internal/experiment's
// parallel.go runIndexed pool). Everything else belongs in
// internal/sim/live, which embraces real concurrency and is outside the
// contract.
var NoGoroutine = &Analyzer{
	Name: "nogoroutine",
	Doc:  "forbid go statements in ftss:det packages outside //ftss:pool-sanctioned worker-pool files",
	Tier: "det",
	Run:  runNoGoroutine,
}

func runNoGoroutine(p *Package) []Diagnostic {
	if !p.Det() {
		return nil
	}
	var out []Diagnostic
	for i, f := range p.Files {
		if _, sanctioned := p.PoolDirective(p.FileNames[i]); sanctioned {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				out = append(out, p.diag("nogoroutine", g.Pos(),
					"go statement in a //ftss:det package: goroutine scheduling is nondeterministic — route fan-out through a //ftss:pool-sanctioned worker pool that merges results in index order, or move the code to internal/sim/live"))
			}
			return true
		})
	}
	return out
}
