package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"
)

// ObsNames enforces the telemetry naming contract on every tiered
// package: metric names handed to obs Registry.Counter / Gauge /
// Histogram, event kinds in obs.Event literals, and span phases in
// obs.Span literals must be lowercase dotted names — [a-z0-9_]
// segments joined by '.' — because they sort into byte-stable
// snapshots, JSONL streams, and delta blocks that CI diffs verbatim.
// A name outside the grammar (uppercase, spaces, a leading dot) still
// renders, so no test catches it until a downstream diff breaks.
//
// Names need not be single literals. The checker folds all-literal
// concatenations and validates the joined string; a concatenation with
// a non-constant part (the live instrument prefix helper) has only its
// constant fragments checked; a bare identifier or selector passes
// outright (the sanctioned name-parameter pattern, e.g. the experiment
// instrument); and fmt.Sprintf passes only when its format is itself a
// lowercase dotted name whose verbs are all numeric — the
// store.shardNNN pattern — so formatted names stay inside the grammar
// for every argument value.
var ObsNames = &Analyzer{
	Name: "obsnames",
	Doc:  "obs metric/event/span names must be lowercase dotted literals (numeric-verb Sprintf and sanctioned name parameters excepted)",
	Tier: "det",
	Run:  runObsNames,
}

const obsPkgPath = "ftss/internal/obs"

// obsNameRE is the full-name grammar: lowercase dotted, starting with
// a letter.
var obsNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z0-9_]+)*$`)

// obsFragmentRE is the relaxed grammar for a constant fragment inside
// a mixed concatenation: the same segments, but a leading or trailing
// dot is fine because the neighbor supplies the rest (".sent").
var obsFragmentRE = regexp.MustCompile(`^\.?[a-z0-9_]+(\.[a-z0-9_]+)*\.?$`)

// obsVerbRE matches one printf conversion: flags, width, precision,
// then the verb character.
var obsVerbRE = regexp.MustCompile(`%[#+\- 0]*[0-9]*(\.[0-9]+)?[a-zA-Z%]`)

// obsRegistryMethods are the obs.Registry lookups whose first argument
// is a metric name.
var obsRegistryMethods = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
}

func runObsNames(p *Package) []Diagnostic {
	// The contract binds both tiers: det packages render snapshots
	// directly, conc packages feed the live planes whose output the
	// same diffs pin. Unclassified packages (cmd, examples) are exempt,
	// like every other tier-scoped check.
	if !p.Det() && !p.Conc() {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				sel, ok := x.Fun.(*ast.SelectorExpr)
				if !ok || !obsRegistryMethods[sel.Sel.Name] || len(x.Args) == 0 {
					return true
				}
				fn, ok := p.objOf(sel.Sel).(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != obsPkgPath {
					return true
				}
				if recv := fn.Type().(*types.Signature).Recv(); recv == nil {
					return true
				}
				out = append(out, p.checkObsName(x.Args[0], "metric name")...)
			case *ast.CompositeLit:
				tn, ok := p.obsTypeName(x)
				if !ok {
					return true
				}
				switch tn {
				case "Event":
					out = append(out, p.checkObsField(x, "Kind", 0, "event kind")...)
				case "Span":
					out = append(out, p.checkObsField(x, "Phase", 2, "span phase")...)
				}
			}
			return true
		})
	}
	return out
}

// obsTypeName resolves a composite literal to its obs type name, when
// the literal builds an ftss/internal/obs type.
func (p *Package) obsTypeName(cl *ast.CompositeLit) (string, bool) {
	t := p.typeOf(cl)
	if t == nil {
		return "", false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != obsPkgPath {
		return "", false
	}
	return obj.Name(), true
}

// checkObsField finds the named field in a composite literal — keyed,
// or positional at idx — and validates its value as an obs name.
func (p *Package) checkObsField(cl *ast.CompositeLit, field string, idx int, what string) []Diagnostic {
	keyed := false
	for _, el := range cl.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		keyed = true
		if id, ok := kv.Key.(*ast.Ident); ok && id.Name == field {
			return p.checkObsName(kv.Value, what)
		}
	}
	if !keyed && idx < len(cl.Elts) {
		return p.checkObsName(cl.Elts[idx], what)
	}
	return nil
}

// checkObsName validates one name expression against the grammar. A
// constant expression (literal or all-literal concatenation, which the
// type checker folds) must match in full; a mixed concatenation has
// its constant fragments checked; fmt.Sprintf must render inside the
// grammar for any numeric argument; identifiers, selectors, and other
// calls pass as sanctioned name sources.
func (p *Package) checkObsName(e ast.Expr, what string) []Diagnostic {
	if s, ok := p.constString(e); ok {
		if !obsNameRE.MatchString(s) {
			return []Diagnostic{p.diag("obsnames", e.Pos(), fmt.Sprintf(
				"obs %s %q is not a lowercase dotted name ([a-z0-9_] segments joined by '.'); it lands verbatim in byte-stable snapshots and streams", what, s))}
		}
		return nil
	}
	switch x := e.(type) {
	case *ast.BinaryExpr:
		// A mixed concatenation: each constant side is a fragment, each
		// non-constant side recurses (it may be another concatenation or
		// a Sprintf).
		var out []Diagnostic
		for _, side := range []ast.Expr{x.X, x.Y} {
			if s, ok := p.constString(side); ok {
				if !obsFragmentRE.MatchString(s) {
					out = append(out, p.diag("obsnames", side.Pos(), fmt.Sprintf(
						"obs %s fragment %q is not lowercase dotted ([a-z0-9_] segments, '.' separators)", what, s)))
				}
				continue
			}
			out = append(out, p.checkObsName(side, what)...)
		}
		return out
	case *ast.CallExpr:
		return p.checkObsSprintf(x, what)
	case *ast.ParenExpr:
		return p.checkObsName(x.X, what)
	}
	// Identifier, selector, index — a name parameter or helper result,
	// sanctioned (the callee's own literals are checked at their site).
	return nil
}

// checkObsSprintf validates a fmt.Sprintf name source: the format must
// be constant, every verb numeric, and the rendered shape (verbs
// replaced by a digit) must match the full grammar. Non-Sprintf calls
// pass: their return value is checked where their internals build it.
func (p *Package) checkObsSprintf(call *ast.CallExpr, what string) []Diagnostic {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Sprintf" || !p.selectsPackage(sel, "fmt") {
		return nil
	}
	if len(call.Args) == 0 {
		return nil
	}
	format, ok := p.constString(call.Args[0])
	if !ok {
		return []Diagnostic{p.diag("obsnames", call.Pos(), fmt.Sprintf(
			"obs %s built by fmt.Sprintf with a non-constant format; use a literal format with numeric verbs (the store.shardNNN pattern)", what))}
	}
	sample := format
	for _, verb := range obsVerbRE.FindAllString(format, -1) {
		vc := verb[len(verb)-1]
		switch vc {
		case '%':
			// A literal percent never fits the grammar; the sample check
			// below reports it.
			continue
		case 'd', 'x', 'o', 'b':
			sample = strings.Replace(sample, verb, "0", 1)
		default:
			return []Diagnostic{p.diag("obsnames", call.Args[0].Pos(), fmt.Sprintf(
				"obs %s format %q uses non-numeric verb %q; only numeric verbs keep the rendered name inside the lowercase dotted grammar", what, format, verb))}
		}
	}
	if !obsNameRE.MatchString(sample) {
		return []Diagnostic{p.diag("obsnames", call.Args[0].Pos(), fmt.Sprintf(
			"obs %s format %q does not render a lowercase dotted name", what, format))}
	}
	return nil
}

// constString resolves an expression to its constant string value via
// the type checker, which folds all-literal concatenations.
func (p *Package) constString(e ast.Expr) (string, bool) {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
