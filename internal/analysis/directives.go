package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// Directive is one parsed ftss directive comment. Directives follow the
// Go toolchain convention — "//" immediately followed by "ftss:kind",
// no space — so gofmt keeps them intact and godoc hides them.
type Directive struct {
	// Kind is the word after "ftss:": det, orderless, or pool.
	Kind string
	// Reason is the free text after the kind. Mandatory for the escape
	// hatches (orderless, pool).
	Reason string
	// File (root-relative) and Line locate the directive comment.
	File string
	Line int

	// header marks a directive placed before the package clause —
	// required for det, which annotates the whole package.
	header bool
}

var directiveRE = regexp.MustCompile(`^//ftss:([a-z]+)(?:[ \t]+(.*))?$`)

// parseDirectives extracts every ftss directive from one file's
// comments.
func parseDirectives(fset *token.FileSet, f *ast.File, relName string) []Directive {
	var ds []Directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := directiveRE.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			ds = append(ds, Directive{
				Kind:   m[1],
				Reason: strings.TrimSpace(m[2]),
				File:   relName,
				Line:   fset.Position(c.Pos()).Line,
				header: c.Pos() < f.Package,
			})
		}
	}
	return ds
}

// Directives validates that every ftss directive is well-formed: a
// known kind, a reason on each escape hatch, orderless attached to a
// range statement, det in the package header. It runs on every package,
// det-annotated or not.
var Directives = &Analyzer{
	Name: "directive",
	Doc:  "ftss: directive comments are well-formed and attached to what they govern",
	Run:  runDirectives,
}

func runDirectives(p *Package) []Diagnostic {
	// Range-statement lines per file, for the attachment check.
	rangeLines := map[string]map[int]bool{}
	for i, f := range p.Files {
		lines := map[int]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			if rs, ok := n.(*ast.RangeStmt); ok {
				lines[p.line(rs.Pos())] = true
			}
			return true
		})
		rangeLines[p.FileNames[i]] = lines
	}

	var out []Diagnostic
	report := func(d Directive, msg string) {
		out = append(out, Diagnostic{
			Analyzer: "directive", File: d.File, Line: d.Line, Col: 1, Message: msg,
		})
	}
	for _, d := range p.Directives {
		switch d.Kind {
		case "det":
			if !d.header {
				report(d, "//ftss:det annotates the whole package and must sit in the file header, before the package clause")
			}
		case "orderless":
			if d.Reason == "" {
				report(d, "//ftss:orderless needs a reason: say why this map iteration order cannot reach any output")
			}
			if !rangeLines[d.File][d.Line] && !rangeLines[d.File][d.Line+1] {
				report(d, "//ftss:orderless is not attached to a range statement (put it on the loop line or the line directly above)")
			}
		case "pool":
			if d.Reason == "" {
				report(d, "//ftss:pool needs a reason: say why this file's goroutine fan-out keeps results deterministic")
			}
		default:
			report(d, fmt.Sprintf("unknown //ftss: directive %q (known: det, orderless, pool)", d.Kind))
		}
	}
	return out
}
