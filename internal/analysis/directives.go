package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// Directive is one parsed ftss directive comment. Directives follow the
// Go toolchain convention — "//" immediately followed by "ftss:kind",
// no space — so gofmt keeps them intact and godoc hides them.
type Directive struct {
	// Kind is the word after "ftss:": det, conc, orderless, pool,
	// guardedby, or unguarded.
	Kind string
	// Reason is the free text after the kind. Mandatory for the escape
	// hatches (orderless, pool, unguarded); for guardedby it names the
	// guarding mutex field.
	Reason string
	// File (root-relative) and Line locate the directive comment.
	File string
	Line int

	// header marks a directive placed before the package clause —
	// required for det, which annotates the whole package.
	header bool
}

var directiveRE = regexp.MustCompile(`^//ftss:([a-z]+)(?:[ \t]+(.*))?$`)

// parseDirectives extracts every ftss directive from one file's
// comments.
func parseDirectives(fset *token.FileSet, f *ast.File, relName string) []Directive {
	var ds []Directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := directiveRE.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			ds = append(ds, Directive{
				Kind:   m[1],
				Reason: strings.TrimSpace(m[2]),
				File:   relName,
				Line:   fset.Position(c.Pos()).Line,
				header: c.Pos() < f.Package,
			})
		}
	}
	return ds
}

// Directives validates that every ftss directive is well-formed: a
// known kind, a reason on each escape hatch, orderless attached to a
// range statement, the tier directives (det, conc) in the package
// header and mutually exclusive, and every internal package classified
// into exactly one tier. It runs on every package, annotated or not.
var Directives = &Analyzer{
	Name: "directive",
	Doc:  "ftss: directive comments are well-formed, attached to what they govern, and every internal package declares one lint tier",
	Run:  runDirectives,
}

// requiresTier reports whether the package must carry a tier header:
// everything under internal/, except the lint fixtures under testdata.
func requiresTier(p *Package) bool {
	return strings.Contains(p.Path, "/internal/") && !strings.Contains(p.Path, "/testdata/")
}

func runDirectives(p *Package) []Diagnostic {
	// Range-statement lines per file, for the attachment check.
	rangeLines := map[string]map[int]bool{}
	for i, f := range p.Files {
		lines := map[int]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			if rs, ok := n.(*ast.RangeStmt); ok {
				lines[p.line(rs.Pos())] = true
			}
			return true
		})
		rangeLines[p.FileNames[i]] = lines
	}

	var out []Diagnostic
	report := func(d Directive, msg string) {
		out = append(out, Diagnostic{
			Analyzer: "directive", File: d.File, Line: d.Line, Col: 1, Message: msg,
		})
	}
	for _, d := range p.Directives {
		switch d.Kind {
		case "det":
			if !d.header {
				report(d, "//ftss:det annotates the whole package and must sit in the file header, before the package clause")
			}
		case "conc":
			if !d.header {
				report(d, "//ftss:conc annotates the whole package and must sit in the file header, before the package clause")
			}
		case "orderless":
			if d.Reason == "" {
				report(d, "//ftss:orderless needs a reason: say why this map iteration order cannot reach any output")
			}
			if !rangeLines[d.File][d.Line] && !rangeLines[d.File][d.Line+1] {
				report(d, "//ftss:orderless is not attached to a range statement (put it on the loop line or the line directly above)")
			}
		case "pool":
			if d.Reason == "" {
				report(d, "//ftss:pool needs a reason: say why this file's goroutine fan-out keeps results deterministic")
			}
		case "guardedby":
			if d.Reason == "" {
				report(d, "//ftss:guardedby needs the name of the guarding mutex field")
			}
			if !p.Conc() {
				report(d, "//ftss:guardedby only applies in //ftss:conc packages; this package is not in the concurrency tier")
			}
		case "unguarded":
			if d.Reason == "" {
				report(d, "//ftss:unguarded needs a reason: say why this access is safe without the declared protection")
			}
		default:
			report(d, fmt.Sprintf("unknown //ftss: directive %q (known: det, conc, orderless, pool, guardedby, unguarded)", d.Kind))
		}
	}

	// Tier discipline: det and conc are mutually exclusive, and every
	// internal package must pick one.
	if p.det && p.conc {
		for _, d := range p.Directives {
			if (d.Kind == "det" || d.Kind == "conc") && d.header {
				report(d, "package declares both //ftss:det and //ftss:conc; a package has exactly one lint tier")
			}
		}
	}
	if requiresTier(p) && !p.det && !p.conc && len(p.Files) > 0 {
		pos := p.Fset.Position(p.Files[0].Package)
		out = append(out, Diagnostic{
			Analyzer: "directive", File: p.FileNames[0], Line: pos.Line, Col: 1,
			Message: fmt.Sprintf("internal package %s declares no lint tier; add //ftss:det (deterministic core) or //ftss:conc (concurrent shell) to the package header", p.Path),
		})
	}
	return out
}
