package analysis

import (
	"fmt"
	"go/parser"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// One loader for the whole test binary: the source importer re-checks
// stdlib packages from $GOROOT/src, which is worth caching across
// fixture packages.
var (
	loaderOnce sync.Once
	sharedL    *Loader
	loaderErr  error
)

func loader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		sharedL, loaderErr = NewLoader(filepath.Join("..", ".."))
	})
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return sharedL
}

func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	p, err := loader(t).LoadDir(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", name, err)
	}
	return p
}

// want comments mark the expected diagnostics inside fixture files:
//
//	expr // want "substring of the message"
//	expr // want:-1 "diagnostic is on the line above"
//
// The optional :+N/:-N offset exists for diagnostics on directive
// lines, where a trailing comment would parse as the directive reason.
var wantRE = regexp.MustCompile(`want(?::([+-]\d+))?\s+"((?:[^"\\]|\\.)*)"`)

type want struct {
	file string
	line int
	text string
}

func fixtureWants(t *testing.T, p *Package) []want {
	t.Helper()
	var ws []want
	for i, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
					line := p.line(c.Pos())
					if m[1] != "" {
						var off int
						fmt.Sscanf(m[1], "%d", &off)
						line += off
					}
					ws = append(ws, want{
						file: p.FileNames[i],
						line: line,
						text: strings.ReplaceAll(m[2], `\"`, `"`),
					})
				}
			}
		}
	}
	return ws
}

// TestFixtures runs the full analyzer suite over each fixture package
// and matches the diagnostics against the want comments, both ways:
// every want must be hit, every diagnostic must be wanted.
func TestFixtures(t *testing.T) {
	fixtures := []string{
		"atomicmix",
		"chandiscipline",
		"clean",
		"clonealias",
		"directive",
		"globalrand",
		"goroutine",
		"guardedby",
		"maporder",
		"nondet",
		"obsnames",
		"tierconflict",
		"waitbalance",
		"wallclock",
	}
	for _, name := range fixtures {
		t.Run(name, func(t *testing.T) {
			p := loadFixture(t, name)
			diags := Lint([]*Package{p})
			wants := fixtureWants(t, p)

			matchedDiag := make([]bool, len(diags))
			for _, w := range wants {
				found := false
				for i, d := range diags {
					if d.File == w.file && d.Line == w.line && strings.Contains(d.Message, w.text) {
						matchedDiag[i] = true
						found = true
					}
				}
				if !found {
					t.Errorf("missing diagnostic: %s:%d wants %q", w.file, w.line, w.text)
				}
			}
			for i, d := range diags {
				if !matchedDiag[i] {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
		})
	}
}

// TestFixtureDetFlags pins the annotation semantics: fixture packages
// carrying a header ftss:det are det, nondet (no annotation) is not.
func TestFixtureDetFlags(t *testing.T) {
	if p := loadFixture(t, "clean"); !p.Det() {
		t.Errorf("clean: Det() = false, want true (header //ftss:det)")
	}
	if p := loadFixture(t, "nondet"); p.Det() {
		t.Errorf("nondet: Det() = true, want false (no annotation)")
	}
	// The misplaced det in the directive fixture must not flip the
	// package to det-by-accident... but the header one already does;
	// what matters is that header placement, not mere presence, is what
	// indexDirectives keys on. goroutine/pool.go has a pool directive:
	p := loadFixture(t, "goroutine")
	if _, ok := p.PoolDirective("internal/analysis/testdata/src/goroutine/pool.go"); !ok {
		t.Errorf("goroutine: pool.go ftss:pool directive not indexed")
	}
	if _, ok := p.PoolDirective("internal/analysis/testdata/src/goroutine/goroutine.go"); ok {
		t.Errorf("goroutine: goroutine.go unexpectedly has a pool directive")
	}
}

// TestFixtureConcFlags pins the conc-tier annotation semantics: the
// conc fixtures are conc and not det, and tierconflict is both (which
// the directive analyzer then flags).
func TestFixtureConcFlags(t *testing.T) {
	for _, name := range []string{"guardedby", "atomicmix", "chandiscipline", "waitbalance"} {
		p := loadFixture(t, name)
		if !p.Conc() || p.Det() {
			t.Errorf("%s: Conc() = %v, Det() = %v, want true, false", name, p.Conc(), p.Det())
		}
	}
	if p := loadFixture(t, "tierconflict"); !p.Conc() || !p.Det() {
		t.Errorf("tierconflict: Conc() = %v, Det() = %v, want both true", p.Conc(), p.Det())
	}
}

// TestUnclassifiedInternalPackage pins the tier requirement: an
// internal package with no tier header is a finding, while fixture
// paths (under testdata) and non-internal paths are exempt. The nondet
// fixture has no tier header, so re-pathing a shallow copy of it
// simulates each case without touching the loader's cache.
func TestUnclassifiedInternalPackage(t *testing.T) {
	base := loadFixture(t, "nondet")
	run := func(path string) []Diagnostic {
		q := *base
		q.Path = path
		return runDirectives(&q)
	}
	if ds := run("ftss/internal/mystery"); len(ds) != 1 ||
		!strings.Contains(ds[0].Message, "declares no lint tier") {
		t.Errorf("internal package without tier: diagnostics = %v, want one 'declares no lint tier'", ds)
	}
	if ds := run("ftss/internal/analysis/testdata/src/nondet"); len(ds) != 0 {
		t.Errorf("testdata package: diagnostics = %v, want none", ds)
	}
	if ds := run("ftss/cmd/ftss-lint"); len(ds) != 0 {
		t.Errorf("cmd package: diagnostics = %v, want none", ds)
	}
}

func TestParseDirectives(t *testing.T) {
	src := `// Package doc.
//
//ftss:det state machines must replay identically
package x

func f(m map[int]int) {
	//ftss:orderless keys feed a commutative sum
	for range m {
	}
}

//ftss:pool merge order is fixed by index

// not a directive: //ftss:det quoted in prose is fine when indented
var _ = 0
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	ds := parseDirectives(fset, f, "x.go")
	if len(ds) != 3 {
		t.Fatalf("got %d directives %+v, want 3", len(ds), ds)
	}
	det, orderless, pool := ds[0], ds[1], ds[2]
	if det.Kind != "det" || !det.header || det.Reason != "state machines must replay identically" {
		t.Errorf("det directive = %+v", det)
	}
	if orderless.Kind != "orderless" || orderless.header || orderless.Reason != "keys feed a commutative sum" || orderless.Line != 7 {
		t.Errorf("orderless directive = %+v", orderless)
	}
	if pool.Kind != "pool" || pool.Reason != "merge order is fixed by index" {
		t.Errorf("pool directive = %+v", pool)
	}
}

func TestSortDiagnostics(t *testing.T) {
	ds := []Diagnostic{
		{File: "b.go", Line: 1, Col: 1, Analyzer: "z"},
		{File: "a.go", Line: 9, Col: 1, Analyzer: "z"},
		{File: "a.go", Line: 2, Col: 7, Analyzer: "maporder"},
		{File: "a.go", Line: 2, Col: 7, Analyzer: "clonealias"},
		{File: "a.go", Line: 2, Col: 2, Analyzer: "z"},
	}
	SortDiagnostics(ds)
	order := make([]string, len(ds))
	for i, d := range ds {
		order[i] = fmt.Sprintf("%s:%d:%d:%s", d.File, d.Line, d.Col, d.Analyzer)
	}
	wantOrder := []string{
		"a.go:2:2:z",
		"a.go:2:7:clonealias",
		"a.go:2:7:maporder",
		"a.go:9:1:z",
		"b.go:1:1:z",
	}
	for i := range wantOrder {
		if order[i] != wantOrder[i] {
			t.Fatalf("order[%d] = %s, want %s (full: %v)", i, order[i], wantOrder[i], order)
		}
	}
}

// TestExpandSkipsTestdata pins that ./... never descends into testdata,
// vendor, or hidden directories — the fixtures must not be linted as
// part of the real tree.
func TestExpandSkipsTestdata(t *testing.T) {
	root := filepath.Join("..", "..")
	dirs, err := Expand(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("Expand(./...) found no packages")
	}
	for _, d := range dirs {
		if strings.Contains(filepath.ToSlash(d), "/testdata/") {
			t.Errorf("Expand(./...) includes fixture dir %s", d)
		}
	}
	// A non-recursive pattern resolves to exactly one directory.
	one, err := Expand(root, []string{"internal/analysis"})
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 {
		t.Fatalf("Expand(internal/analysis) = %v, want one dir", one)
	}
	// A pattern with no Go files is an error, like the go tool.
	if _, err := Expand(root, []string{"internal/nosuchpkg"}); err == nil {
		t.Error("Expand(internal/nosuchpkg) succeeded, want error")
	}
}

// TestRepoIsClean is the acceptance gate in miniature: the committed
// tree must lint clean, so every determinism violation is either fixed
// or carries an annotated escape hatch.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide type-check is slow; skipped in -short")
	}
	root := filepath.Join("..", "..")
	dirs, err := Expand(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	l := loader(t)
	var pkgs []*Package
	det, conc := 0, 0
	for _, d := range dirs {
		p, err := l.LoadDir(d)
		if err != nil {
			t.Fatalf("LoadDir(%s): %v", d, err)
		}
		if p.Det() {
			det++
		}
		if p.Conc() {
			conc++
		}
		pkgs = append(pkgs, p)
	}
	if det < 10 {
		t.Errorf("only %d det packages, want the core packages annotated (>= 10)", det)
	}
	if conc < 5 {
		t.Errorf("only %d conc packages, want the concurrent shell annotated (>= 5: obs, cli, cluster, sim/live, wire/transport)", conc)
	}
	// Since the bitset proc.Set made every process-set iteration
	// ascending by construction, the committed tree carries no reasoned
	// map-order exceptions: //ftss:pool (the worker-pool sanction) is the
	// only escape hatch allowed to remain.
	for _, p := range pkgs {
		for _, d := range p.Directives {
			if d.Kind == "orderless" {
				t.Errorf("%s:%d: //ftss:orderless hatch in the committed tree; iterate a proc.Set (ordered by construction) or sort the keys instead", d.File, d.Line)
			}
		}
	}
	for _, d := range Lint(pkgs) {
		t.Errorf("repo not lint-clean: %s", d)
	}
}
