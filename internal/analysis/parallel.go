package analysis

//ftss:pool one loader per worker over a shared work index; packages land by index and diagnostics are sorted after the merge, so output is identical for any worker count

import (
	"go/importer"
	"go/token"
	"go/types"
	"runtime"
	"sync"
)

// Package loading dominates lint wall time (type-checking pulls in the
// transitive dependencies of every package), and the packages of one
// run are independent: each worker owns a private Loader — the Loader
// caches by mutable maps and is not concurrency-safe — and claims
// directory indices from a shared counter, exactly the
// internal/experiment runIndexed pool shape. Results land in
// index-order slices and the diagnostics are sorted after the merge,
// so the report is byte-identical to a sequential run regardless of
// worker count.
//
// What the workers DO share is the import cache: type-checking any
// package pulls in its transitive dependencies, and without sharing,
// every worker re-checks the standard library from $GOROOT/src — a cost
// that swamps the parallelism (measured: 8 workers ran 5x SLOWER than
// one over this repo before the cache was shared). sharedImports
// single-flights each import path, so every dependency — stdlib or
// module-local — is type-checked exactly once per run while the
// assigned packages' own checks proceed in parallel. Completed
// types.Package values and token.FileSet are safe for concurrent
// reads, which is all the other workers do with them.

// sharedImports is the cross-worker import cache. Each import path gets
// a single-flight entry: the first worker to ask for it runs the load
// (under the entry's Once), everyone else blocks until the result is
// ready and then shares it. Entries for different paths do not block
// each other, and Go's import graph is acyclic, so nested resolution
// (a dependency importing another dependency) cannot deadlock.
type sharedImports struct {
	mu      sync.Mutex
	entries map[string]*importEntry

	// The source importer resolves stdlib paths by type-checking
	// $GOROOT/src; it caches internally but is not concurrency-safe, so
	// calls into it are serialized. stdMu is only ever acquired inside
	// an entry's Once and released before it returns — no cycle with the
	// entry locks.
	stdMu sync.Mutex
	std   types.Importer
}

type importEntry struct {
	once sync.Once
	tp   *types.Package
	err  error
}

func newSharedImports(fset *token.FileSet) *sharedImports {
	return &sharedImports{
		entries: map[string]*importEntry{},
		std:     importer.ForCompiler(fset, "source", nil),
	}
}

// resolve returns the cached package for ipath, running load exactly
// once across all workers on first use.
func (s *sharedImports) resolve(ipath string, load func() (*types.Package, error)) (*types.Package, error) {
	s.mu.Lock()
	e, ok := s.entries[ipath]
	if !ok {
		e = new(importEntry)
		s.entries[ipath] = e
	}
	s.mu.Unlock()
	e.once.Do(func() { e.tp, e.err = load() })
	return e.tp, e.err
}

// stdImport serializes access to the shared source importer.
func (s *sharedImports) stdImport(ipath string) (*types.Package, error) {
	s.stdMu.Lock()
	defer s.stdMu.Unlock()
	return s.std.Import(ipath)
}

// LintDirs loads the packages of the given directories (as returned by
// Expand) across at most `workers` goroutines and runs the analyzers
// over them. It returns the packages in directory order and the merged,
// sorted diagnostics. workers <= 0 means GOMAXPROCS; workers == 1 runs
// inline with a single shared loader and no goroutines, the historical
// sequential path. The first load error in directory order wins, so
// even failures are deterministic.
func LintDirs(modRoot string, dirs []string, workers int, analyzers []*Analyzer) ([]*Package, []Diagnostic, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(dirs) {
		workers = len(dirs)
	}
	pkgs := make([]*Package, len(dirs))
	errs := make([]error, len(dirs))

	if workers <= 1 {
		l, err := NewLoader(modRoot)
		if err != nil {
			return nil, nil, err
		}
		for i, d := range dirs {
			pkgs[i], errs[i] = l.LoadDir(d)
		}
	} else {
		fset := token.NewFileSet() // concurrency-safe; shared so cached packages' positions resolve everywhere
		shared := newSharedImports(fset)
		var mu sync.Mutex
		next := 0
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				var l *Loader // built on first claim: an idle worker costs nothing
				for {
					mu.Lock()
					i := next
					next++
					mu.Unlock()
					if i >= len(dirs) {
						return
					}
					if l == nil {
						if l, errs[i] = newPoolLoader(modRoot, fset, shared); errs[i] != nil {
							continue
						}
					}
					pkgs[i], errs[i] = l.LoadDir(dirs[i])
				}
			}()
		}
		wg.Wait()
	}

	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	return pkgs, LintWith(pkgs, analyzers), nil
}
