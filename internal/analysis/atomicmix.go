package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMix forbids mixing sync/atomic and plain accesses on the same
// variable in //ftss:conc packages. A variable whose address is ever
// passed to a sync/atomic function (atomic.AddUint64(&x, 1), ...) is an
// atomic variable: every other read or write of it must also go
// through the atomic API, or the atomics guarantee nothing — the plain
// access races with them, and the race detector only catches the
// interleavings a given seed happens to produce.
//
// Pass 1 collects every variable addressed inside a sync/atomic call
// (those identifiers are sanctioned). Pass 2 flags every other mention
// of those variables in the package, unless the line carries a
// //ftss:unguarded <reason> hatch (e.g. a read in a snapshot method
// that runs after all writers have been joined).
//
// The typed atomics (atomic.Uint64, atomic.Bool, ...) make this class
// of bug unrepresentable and pass trivially; prefer them in new code.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "variables touched via sync/atomic in ftss:conc packages are never also accessed non-atomically",
	Tier: "conc",
	Run:  runAtomicMix,
}

func runAtomicMix(p *Package) []Diagnostic {
	if !p.Conc() {
		return nil
	}

	// Pass 1: variables addressed inside sync/atomic calls. The
	// identifier nodes inside those calls are the sanctioned mentions.
	atomicVars := map[types.Object]bool{}
	sanctioned := map[*ast.Ident]bool{}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !p.selectsPackage(sel, "sync/atomic") {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				var id *ast.Ident
				switch x := un.X.(type) {
				case *ast.Ident:
					id = x
				case *ast.SelectorExpr:
					id = x.Sel
				}
				if id == nil {
					continue
				}
				if obj, ok := p.objOf(id).(*types.Var); ok {
					atomicVars[obj] = true
					sanctioned[id] = true
				}
			}
			return true
		})
	}
	if len(atomicVars) == 0 {
		return nil
	}

	// Pass 2: any other mention is a plain access racing the atomics.
	var out []Diagnostic
	for i, f := range p.Files {
		fname := p.FileNames[i]
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || sanctioned[id] {
				return true
			}
			obj, isVar := p.Info.Uses[id].(*types.Var)
			if !isVar || !atomicVars[obj] {
				return true
			}
			if _, hatched := p.UnguardedAt(fname, p.line(id.Pos())); hatched {
				return true
			}
			out = append(out, p.diag("atomicmix", id.Pos(), fmt.Sprintf(
				"%s is accessed with sync/atomic elsewhere in this package; this plain access races with those atomics — use the atomic API here too (or a typed atomic), or hatch //ftss:unguarded <reason>",
				id.Name)))
			return true
		})
	}
	return out
}
