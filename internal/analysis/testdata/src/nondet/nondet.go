// Package nondet is a lint fixture WITHOUT the det annotation: the
// determinism analyzers must stay silent here even though every banned
// construct appears. Only directive well-formedness applies.
package nondet

import (
	"math/rand"
	"time"
)

func Wall(done chan struct{}) int64 {
	go func() { close(done) }()
	for k := range map[int]int{1: 1} {
		_ = k
	}
	return time.Now().UnixNano() + int64(rand.Intn(9))
}
