// Package chandiscipline is a lint fixture: one closing owner per
// channel, no send after close on the same path, and every
// condition-free loop reaches a termination signal.
//
//ftss:conc fixture
package chandiscipline

type pipe struct {
	a chan int
	b chan int
}

// CloseA is channel a's single closing owner: no finding.
func (p *pipe) CloseA() {
	close(p.a)
}

func (p *pipe) CloseB1() {
	close(p.b) // want "closed in 2 different functions"
}

func (p *pipe) CloseB2() {
	close(p.b) // want "closed in 2 different functions"
}

func SendAfterClose() {
	ch := make(chan int, 1)
	close(ch)
	ch <- 1 // want "send on ch after close"
}

func GoodCloseLast() {
	ch := make(chan int, 1)
	ch <- 1
	close(ch)
}

func GoodBranchClose(b bool) {
	ch := make(chan int, 1)
	if b {
		close(ch)
		return
	}
	ch <- 1 // the close taints only its branch: no finding
}

func BadSpin(work chan int) {
	go func() {
		for { // want "never reaches a termination signal"
			<-work
		}
	}()
}

func GoodStopChannel(work chan int, stop chan struct{}) {
	go func() {
		for {
			select {
			case <-work:
			case <-stop:
				return
			}
		}
	}()
}

func GoodRange(work chan int) {
	go func() {
		for range work {
		}
	}()
}

func GoodLabeledBreak(work chan int, stop chan struct{}) {
drain:
	for {
		select {
		case <-work:
		case <-stop:
			break drain
		}
	}
}

func HatchedSpin(tick func()) {
	//ftss:unguarded fixture: daemon loop, exits with the process
	for {
		tick()
	}
}
