// Package globalrand is a lint fixture: global math/rand draws in a det
// package.
//
//ftss:det fixture
package globalrand

import "math/rand"

func Bad(n int) int {
	rand.Seed(1)                            // want "math/rand.Seed draws from the process-global source"
	x := rand.Intn(n)                       // want "math/rand.Intn draws from the process-global source"
	f := rand.Float64                       // want "math/rand.Float64 draws from the process-global source"
	return x + int(rand.Int63()) + int(f()) // want "math/rand.Int63 draws from the process-global source"
}

// Good injects a seeded generator: every draw is a pure function of the
// seed.
func Good(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	var r *rand.Rand = rng // type references are fine
	return r.Intn(n)
}
