// Package wallclock is a lint fixture: forbidden wall-clock reads in a
// det package. Lines carry want-diagnostic comments consumed by the
// fixture harness in analysis_test.go.
//
//ftss:det fixture
package wallclock

import (
	"time"

	tt "time"
)

const tick = 10 * time.Millisecond // durations are pure arithmetic: fine

func Bad() time.Time {
	time.Sleep(tick)                     // want "time.Sleep reads the wall clock"
	if time.Since(time.Unix(0, 0)) > 0 { // want "time.Since reads the wall clock"
		<-tt.After(tick) // want "time.After reads the wall clock"
	}
	t := time.NewTimer(tick) // want "time.NewTimer reads the wall clock"
	t.Stop()
	return time.Now() // want "time.Now reads the wall clock"
}

// Good constructs instants from explicit inputs — no clock involved.
func Good(sec int64) time.Time { return time.Unix(sec, 0) }
