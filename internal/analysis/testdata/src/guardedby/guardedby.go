// Package guardedby is a lint fixture: //ftss:guardedby lock-state
// tracking — locked and deferred-unlock accesses pass, unlocked
// accesses (including after an unlock, inside goroutines, and after a
// branch-local lock) are findings, *Locked helpers start held, and
// malformed annotations are findings of their own.
//
//ftss:conc fixture
package guardedby

import "sync"

type counter struct {
	mu sync.Mutex
	//ftss:guardedby mu
	n int
	//ftss:guardedby mu
	names []string
}

func (c *counter) Good() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) GoodDefer() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) Bad() {
	c.n++ // want "c.n is accessed without holding c.mu"
}

func (c *counter) BadAfterUnlock() {
	c.mu.Lock()
	c.n = 1
	c.mu.Unlock()
	c.names = nil // want "c.names is accessed without holding c.mu"
}

// bumpLocked's name declares the caller-holds-lock convention: the body
// starts with the receiver's guards held.
func (c *counter) bumpLocked() {
	c.n++
}

func (c *counter) GoodThroughHelper() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bumpLocked()
}

func (c *counter) BadInGoroutine() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.n++ // want "c.n is accessed without holding c.mu"
	}()
}

func (c *counter) BadBranchLocalLock(b bool) {
	if b {
		c.mu.Lock()
		c.n++
		c.mu.Unlock()
	}
	c.names = append(c.names, "x") // want "c.names is accessed without holding c.mu"
}

func HatchedInit() *counter {
	d := &counter{}
	d.n = 7 //ftss:unguarded fresh object, not yet reachable by any other goroutine
	return d
}

type gauge struct {
	rw sync.RWMutex
	//ftss:guardedby rw
	v int
}

func (g *gauge) GoodRead() int {
	g.rw.RLock()
	defer g.rw.RUnlock()
	return g.v
}

type badAnnotation struct {
	//ftss:guardedby missing
	x int // want:-1 "names no sibling sync.Mutex/RWMutex field"
}

//ftss:guardedby mu
var dangling = 0 // want:-1 "not attached to a struct field"
