// Package maporder is a lint fixture: map iteration order escaping into
// output in a det package, plus the idioms that legitimately pass.
//
//ftss:det fixture
package maporder

import (
	"fmt"
	"sort"
)

// Keys leaks iteration order into the returned slice.
func Keys(m map[string]int) []string {
	var ks []string
	for k := range m { // want "appends to a slice that outlives the loop"
		ks = append(ks, k)
	}
	return ks
}

// SortedKeys is the collect-then-sort idiom: deterministic once sorted.
func SortedKeys(m map[string]int) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// Render writes rows in iteration order.
func Render(m map[string]int) {
	for k, v := range m { // want "writes output"
		fmt.Println(k, v)
	}
}

// Index writes through a cursor that is not the range key.
func Index(m map[int]int, out []int) {
	i := 0
	for _, v := range m { // want "writes indexed state at an index other than the range key"
		out[i] = v
		i++
	}
}

// Send leaks order into a channel.
func Send(m map[int]int, ch chan int) {
	for _, v := range m { // want "sends on a channel"
		ch <- v
	}
}

// KeyedCopy writes each iteration to its own key: order-free.
func KeyedCopy(m map[int]int) map[int]int {
	out := make(map[int]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Fold is commutative: order-free.
func Fold(m map[int]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// Scratch mutates state local to the loop body: order-free.
func Scratch(m map[int]int) int {
	total := 0
	for _, v := range m {
		tmp := make([]int, 1)
		tmp[0] = v
		total += tmp[0]
	}
	return total
}

// Annotated carries the reasoned escape hatch.
func Annotated(m map[int]int, ch chan int) {
	//ftss:orderless the consumer drains into a set; arrival order is immaterial
	for _, v := range m {
		ch <- v
	}
}
