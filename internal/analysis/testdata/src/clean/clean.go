// Package clean is a lint fixture: a det package with nothing to
// report — seeded randomness, sorted map iteration, deep copies.
//
//ftss:det fixture
package clean

import (
	"math/rand"
	"sort"
)

// Pick draws from an injected generator.
func Pick(rng *rand.Rand, n int) int { return rng.Intn(n) }

// Tally folds a map commutatively and renders it in key order.
func Tally(m map[string]int) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// Grid is deep-copied row by row.
type Grid struct{ Rows [][]int }

func (g *Grid) Clone() *Grid {
	c := &Grid{Rows: make([][]int, len(g.Rows))}
	for i := range g.Rows {
		c.Rows[i] = append([]int(nil), g.Rows[i]...)
	}
	return c
}
