// Package directive is a lint fixture for directive well-formedness:
// unknown kinds, missing reasons, detached orderless, misplaced det.
// The wants sit one line below each directive (want:-1) because a
// comment on the directive line would parse as its reason.
//
//ftss:det fixture
package directive

func Unknown(m map[int]int) int {
	total := 0
	//ftss:frobnicate whatever
	for _, v := range m { // want:-1 "unknown //ftss: directive"
		total += v
	}
	return total
}

func Reasonless(m map[int]int) int {
	total := 0
	//ftss:orderless
	for _, v := range m { // want:-1 "//ftss:orderless needs a reason"
		total += v
	}
	return total
}

//ftss:orderless fixture: nothing below ranges over anything
var _ = 0 // want:-1 "not attached to a range statement"

//ftss:pool
var _ = 1 // want:-1 "//ftss:pool needs a reason"

//ftss:det misplaced
var _ = 2 // want:-1 "must sit in the file header"

//ftss:conc misplaced
var _ = 3 // want:-1 "must sit in the file header"

//ftss:guardedby
var _ = 4 // want:-1 "needs the name of the guarding mutex" want:-1 "only applies in //ftss:conc packages"

//ftss:guardedby mu
var _ = 5 // want:-1 "only applies in //ftss:conc packages"

//ftss:unguarded
var _ = 6 // want:-1 "//ftss:unguarded needs a reason"
