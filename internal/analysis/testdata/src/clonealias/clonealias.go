// Package clonealias is a lint fixture: Clone/Step implementations that
// alias instead of copying, next to the deep-copy shapes that pass.
//
//ftss:det fixture
package clonealias

// State is cloned correctly: fresh backing arrays, keyed map copy.
type State struct {
	Data []int
	Tags map[string]int
}

func (s *State) Clone() *State {
	c := &State{Data: make([]int, len(s.Data)), Tags: make(map[string]int, len(s.Tags))}
	copy(c.Data, s.Data)
	for k, v := range s.Tags {
		c.Tags[k] = v
	}
	return c
}

// Shallow shares both backing structures with its "copy".
type Shallow struct {
	Data []int
	Tags map[string]int
}

func (s *Shallow) Clone() *Shallow {
	return &Shallow{
		Data: s.Data, // want "aliases the receiver's backing slice"
		Tags: s.Tags, // want "aliases the receiver's backing map"
	}
}

// Self does not even pretend to copy.
type Self struct{ m map[int]int }

func (s *Self) Clone() *Self {
	return s // want "returns its receiver unchanged"
}

// Sink retains the caller's buffer.
type Sink struct{ buf []byte }

func (k *Sink) Step(in []byte) {
	k.buf = in // want "aliases parameter in's backing slice"
}

// Echo returns a parameter slice as if it were fresh state.
type Echo struct{}

func (Echo) Step(in []int) []int {
	return in // want "aliases parameter in's backing slice"
}

// Cast launders the alias through a type assertion and a local.
type Cast struct{}

func (Cast) Step(s any) []int {
	v := s.([]int)
	return v // want "aliases parameter s's backing slice"
}

// Parked builds the aliasing composite in a local before returning it.
type Parked struct{ Data []int }

func (p *Parked) Clone() *Parked {
	c := &Parked{Data: p.Data} // want "aliases the receiver's backing slice"
	return c
}

// Grow is legal: append against a nil base copies.
type Grow struct{ Data []int }

func (g *Grow) Clone() *Grow {
	return &Grow{Data: append([]int(nil), g.Data...)}
}
