// Package obsnames is a lint fixture: telemetry names outside the
// lowercase dotted grammar, plus every sanctioned way of building one.
//
//ftss:det fixture
package obsnames

import (
	"fmt"

	"ftss/internal/obs"
)

var bounds = []uint64{1, 2, 4}

// Bad names: the grammar is [a-z0-9_] segments joined by '.'.
func bad(reg *obs.Registry, sink obs.Sink, col *obs.Collector) {
	reg.Counter("Store.ops")        // want "obs metric name \"Store.ops\" is not a lowercase dotted name"
	reg.Gauge("store-frontier")     // want "obs metric name \"store-frontier\" is not a lowercase dotted name"
	reg.Histogram("lat us", bounds) // want "obs metric name \"lat us\" is not a lowercase dotted name"
	reg.Counter(".ops")             // want "obs metric name \".ops\" is not a lowercase dotted name"
	reg.Counter("store" + "..ops")  // want "obs metric name \"store..ops\" is not a lowercase dotted name"

	sink.Emit(obs.Event{Kind: "Shard_Corrupt", T: 1, P: -1}) // want "obs event kind \"Shard_Corrupt\" is not a lowercase dotted name"
	col.Record(obs.Span{ID: 1, Phase: "store queue"})        // want "obs span phase \"store queue\" is not a lowercase dotted name"
}

// Bad fragments and formats inside the sanctioned builders.
func badBuilders(reg *obs.Registry, prefix string, i int) {
	reg.Counter(prefix + ".Sent")                          // want "obs metric name fragment \".Sent\" is not lowercase dotted"
	reg.Counter(fmt.Sprintf("store.shard%s.ops", prefix))  // want "obs metric name format \"store.shard%s.ops\" uses non-numeric verb \"%s\""
	reg.Counter(fmt.Sprintf("store.shard%03d ops", i))     // want "obs metric name format \"store.shard%03d ops\" does not render a lowercase dotted name"
	reg.Counter(fmt.Sprintf(nonConstFormat(), i))          // want "obs metric name built by fmt.Sprintf with a non-constant format"
}

func nonConstFormat() string { return "store.%d" }

// Good: literals, folded concatenations, prefix helpers, numeric-verb
// Sprintf, and bare name parameters all pass.
func good(reg *obs.Registry, sink obs.Sink, col *obs.Collector, prefix, name string, i int) {
	reg.Counter("store.all.ops")
	reg.Counter("ops")
	reg.Histogram("store.all.latency_us", bounds)
	reg.Counter("store." + "all." + "marks")
	reg.Counter(prefix + ".sent")
	reg.Counter(prefix + name)
	reg.Counter(name)
	reg.Counter(fmt.Sprintf("store.shard%03d.ops", i))
	sink.Emit(obs.Event{Kind: "shard_corrupt", T: 1, P: -1})
	sink.Emit(obs.Event{Kind: name, T: 1, P: -1})
	col.Record(obs.Span{ID: 1, Phase: "store.queue"})
	col.Record(obs.Span{1, 0, "store.apply", 0, 1, 2, ""})
}
