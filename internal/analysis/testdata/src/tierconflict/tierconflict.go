// Package tierconflict is a lint fixture: a package that declares both
// //ftss:det and //ftss:conc gets a finding at each tier header — a
// package has exactly one lint tier.
//
//ftss:det fixture
// want:-1 "exactly one lint tier"
//ftss:conc fixture
// want:-1 "exactly one lint tier"
package tierconflict

var _ = 0
