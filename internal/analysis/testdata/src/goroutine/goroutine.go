// Package goroutine is a lint fixture: go statements in a det package.
//
//ftss:det fixture
package goroutine

func Bad(f func()) {
	go f() // want "go statement in a //ftss:det package"
}

func AlsoBad(done chan struct{}) {
	go func() { // want "go statement in a //ftss:det package"
		close(done)
	}()
}
