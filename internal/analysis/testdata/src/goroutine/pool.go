package goroutine

//ftss:pool fixture: bounded fan-out whose results are merged in index order

// PoolRun stands in for the sanctioned worker pool: the file-level
// ftss:pool directive exempts this file from nogoroutine.
func PoolRun(fns []func()) {
	for _, f := range fns {
		go f()
	}
}
