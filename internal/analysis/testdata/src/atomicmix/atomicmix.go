// Package atomicmix is a lint fixture: a variable touched via
// sync/atomic anywhere in the package must be touched that way
// everywhere — plain reads and writes of it are findings; typed
// atomics and hatched snapshot reads pass.
//
//ftss:conc fixture
package atomicmix

import "sync/atomic"

type stats struct {
	hits uint64
	safe atomic.Uint64
}

func (s *stats) Inc() {
	atomic.AddUint64(&s.hits, 1)
}

func (s *stats) GoodRead() uint64 {
	return atomic.LoadUint64(&s.hits)
}

func (s *stats) BadRead() uint64 {
	return s.hits // want "hits is accessed with sync/atomic elsewhere"
}

func (s *stats) BadWrite() {
	s.hits = 0 // want "hits is accessed with sync/atomic elsewhere"
}

func (s *stats) HatchedSnapshot() uint64 {
	return s.hits //ftss:unguarded every writer goroutine is joined before snapshots
}

func (s *stats) GoodTyped() uint64 {
	s.safe.Add(1)
	return s.safe.Load()
}

var global int64

func BumpGlobal() {
	atomic.AddInt64(&global, 1)
}

func BadGlobal() int64 {
	return global // want "global is accessed with sync/atomic elsewhere"
}
