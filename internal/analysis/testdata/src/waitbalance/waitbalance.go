// Package waitbalance is a lint fixture: WaitGroup Add/Done pairing per
// variable, Done via defer (or the sole fall-through path), and Add
// before the go statement rather than inside the goroutine.
//
//ftss:conc fixture
package waitbalance

import "sync"

func Good(fns []func()) {
	var wg sync.WaitGroup
	for _, f := range fns {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f()
		}()
	}
	wg.Wait()
}

func BadAddInGoroutine(f func()) {
	var wg sync.WaitGroup
	go func() {
		wg.Add(1) // want "Add inside the spawned goroutine races with Wait"
		defer wg.Done()
		f()
	}()
	wg.Wait()
}

func BadDoneAfterEarlyReturn(f func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		if f == nil {
			return
		}
		f()
		wg.Done() // want "Done outside defer"
	}()
	wg.Wait()
}

func GoodTailDone(f func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		f()
		wg.Done()
	}()
	wg.Wait()
}

type leaky struct {
	wg sync.WaitGroup
}

func (l *leaky) BadAddNoDone() {
	l.wg.Add(1) // want "Add calls but no Done"
	l.wg.Wait()
}

type overdone struct {
	wg sync.WaitGroup
}

func (o *overdone) BadDoneNoAdd() {
	defer o.wg.Done() // want "Done calls but no Add"
}

func HatchedSoloAdd() {
	var wg sync.WaitGroup
	wg.Add(1) //ftss:unguarded fixture: the matching Done lives in generated code
	wg.Wait()
}
