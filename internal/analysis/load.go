package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks packages with no toolchain dependency
// beyond the standard library: module-local imports are resolved by
// recursively type-checking their source directories, everything else
// goes through go/importer's source importer ($GOROOT/src). A stdlib
// import that fails to load degrades to an empty placeholder package so
// analysis of the importing package proceeds on package-local type
// information instead of dying.
type Loader struct {
	Fset    *token.FileSet
	ModRoot string
	ModPath string

	std     types.Importer
	shared  *sharedImports            // non-nil in pool loaders: cross-worker import cache
	typesBy map[string]*types.Package // by import path
	pkgsBy  map[string]*Package       // by absolute directory
	loading map[string]bool           // cycle guard, by absolute directory
}

// NewLoader builds a loader rooted at the module directory (the one
// holding go.mod).
func NewLoader(modRoot string) (*Loader, error) {
	abs, err := filepath.Abs(modRoot)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	l := &Loader{
		Fset:    token.NewFileSet(),
		ModRoot: abs,
		ModPath: modPath,
		typesBy: map[string]*types.Package{},
		pkgsBy:  map[string]*Package{},
		loading: map[string]bool{},
	}
	l.std = importer.ForCompiler(l.Fset, "source", nil)
	return l, nil
}

// newPoolLoader builds a worker's loader for LintDirs: it shares the
// fileset and the single-flight import cache with its sibling workers,
// so every dependency is type-checked once per run rather than once per
// worker. Only the worker that owns the loader may call into it.
func newPoolLoader(modRoot string, fset *token.FileSet, shared *sharedImports) (*Loader, error) {
	l, err := NewLoader(modRoot)
	if err != nil {
		return nil, err
	}
	l.Fset = fset
	l.std = nil // dependency resolution goes through shared instead
	l.shared = shared
	return l, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}

// Import implements types.Importer for the dependencies of packages
// under analysis. Pool loaders route every dependency through the
// cross-worker single-flight cache; completed types.Packages are safe
// for the concurrent reads the sibling type-checkers do with them.
func (l *Loader) Import(ipath string) (*types.Package, error) {
	if tp, ok := l.typesBy[ipath]; ok {
		return tp, nil
	}
	if ipath == "unsafe" {
		return types.Unsafe, nil
	}
	if dir := l.localDir(ipath); dir != "" {
		load := func() (*types.Package, error) {
			p, err := l.LoadDir(dir)
			if err != nil {
				return nil, err
			}
			return p.Types, nil
		}
		if l.shared == nil {
			return load()
		}
		tp, err := l.shared.resolve(ipath, load)
		if err != nil {
			return nil, err
		}
		l.typesBy[ipath] = tp
		return tp, nil
	}
	// Stdlib (or at least non-module): a failed import degrades to an
	// empty placeholder so analysis of the importer proceeds on
	// package-local type information instead of dying.
	load := func() (*types.Package, error) {
		var tp *types.Package
		var err error
		if l.shared != nil {
			tp, err = l.shared.stdImport(ipath)
		} else {
			tp, err = l.std.Import(ipath)
		}
		if err != nil || tp == nil {
			tp = types.NewPackage(ipath, path.Base(ipath))
			tp.MarkComplete()
		}
		return tp, nil
	}
	var tp *types.Package
	if l.shared != nil {
		tp, _ = l.shared.resolve(ipath, load) // load never errors: failures become placeholders
	} else {
		tp, _ = load()
	}
	l.typesBy[ipath] = tp
	return tp, nil
}

// localDir maps a module-local import path to its directory, or "".
func (l *Loader) localDir(ipath string) string {
	if ipath == l.ModPath {
		return l.ModRoot
	}
	if rest, ok := strings.CutPrefix(ipath, l.ModPath+"/"); ok {
		return filepath.Join(l.ModRoot, filepath.FromSlash(rest))
	}
	return ""
}

// importPathFor is localDir's inverse; directories outside the module
// get a synthetic slash path (only used for display).
func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.ModRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(dir)
	}
	if rel == "." {
		return l.ModPath
	}
	return l.ModPath + "/" + filepath.ToSlash(rel)
}

// LoadDir parses and type-checks the package in one directory. Test
// files are excluded — they are exempt from every contract. Type errors
// are soft: they are recorded on the package and analysis proceeds on
// whatever the checker resolved.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if p, ok := l.pkgsBy[abs]; ok {
		return p, nil
	}
	if l.loading[abs] {
		return nil, fmt.Errorf("import cycle through %s", abs)
	}
	l.loading[abs] = true
	defer delete(l.loading, abs)

	names, err := goFileNames(abs)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("%s: no buildable Go files", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(abs, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	pkgName := files[0].Name.Name
	for i, f := range files {
		if f.Name.Name != pkgName {
			return nil, fmt.Errorf("%s: multiple packages (%s, %s)", dir, pkgName, f.Name.Name)
		}
		_ = i
	}

	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	var soft []error
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Error:       func(err error) { soft = append(soft, err) },
	}
	ipath := l.importPathFor(abs)
	tpkg, _ := conf.Check(ipath, l.Fset, files, info) // hard errors are mirrored in soft
	l.typesBy[ipath] = tpkg

	p := &Package{
		Path:       ipath,
		Dir:        abs,
		Root:       l.ModRoot,
		Name:       pkgName,
		Fset:       l.Fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		TypeErrors: soft,
	}
	for _, f := range files {
		fname := p.relFile(l.Fset.Position(f.Pos()).Filename)
		p.FileNames = append(p.FileNames, fname)
		p.Directives = append(p.Directives, parseDirectives(l.Fset, f, fname)...)
	}
	p.indexDirectives()
	l.pkgsBy[abs] = p
	return p, nil
}

// goFileNames lists the analyzable files of a directory in sorted
// order: .go, not _test.go, not editor/build artifacts.
func goFileNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Expand resolves go-style package patterns ("./...",
// "./internal/...", "internal/chaos") into the sorted list of package
// directories under root. Recursive patterns skip testdata, vendor, and
// hidden or underscore directories, matching the go tool.
func Expand(root string, patterns []string) ([]string, error) {
	rootAbs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		pat = path.Clean(filepath.ToSlash(pat))
		pat = strings.TrimPrefix(pat, "./")
		base, recursive := strings.CutSuffix(pat, "...")
		base = strings.TrimSuffix(base, "/")
		if base == "" || base == "." {
			base = "."
		}
		start := filepath.Join(rootAbs, filepath.FromSlash(base))
		if !recursive {
			names, err := goFileNames(start)
			if err != nil {
				return nil, err
			}
			if len(names) == 0 {
				return nil, fmt.Errorf("%s: no buildable Go files", pat)
			}
			add(start)
			continue
		}
		err := filepath.WalkDir(start, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != start && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			names, err := goFileNames(p)
			if err != nil {
				return err
			}
			if len(names) > 0 {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}
