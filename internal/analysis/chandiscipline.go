package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// ChanDiscipline enforces the channel protocol of the concurrent shell
// — every file of a //ftss:conc package, plus the //ftss:pool worker
// files of det packages:
//
//   - Single closing owner: un-hatched close(ch) sites for one channel
//     variable must all live in the same function. Two functions that
//     can both close the same channel is a double-close panic waiting
//     on an interleaving (exactly the Stop/Kill overlap class of bug).
//   - No send after close, per function: a linear walk tracks which
//     channels a path has closed; a send on one of them is a "send on
//     closed channel" panic on that path.
//   - Termination signal: a "for {" loop with no condition must reach
//     a return, or a break that targets the loop — otherwise the
//     goroutine running it can never be joined. Loops that range over
//     a channel terminate when it closes and pass trivially.
//
// Each rule is hatched per line with //ftss:unguarded <reason>.
var ChanDiscipline = &Analyzer{
	Name: "chandiscipline",
	Doc:  "channels in ftss:conc packages have one closing owner, no send after close, and no condition-free loop without a termination signal",
	Tier: "conc",
	Run:  runChanDiscipline,
}

func runChanDiscipline(p *Package) []Diagnostic {
	var out []Diagnostic

	// Close-ownership sites, collected across every in-scope file.
	type closeSite struct {
		pos  token.Pos
		file string
		fn   *ast.FuncDecl
	}
	sites := map[types.Object][]closeSite{}
	var siteOrder []types.Object // first-seen order, for deterministic iteration

	for _, i := range p.concFiles() {
		f, fname := p.Files[i], p.FileNames[i]
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Collect close sites (any nesting; literals belong to the
			// enclosing declaration for ownership purposes).
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) != 1 || !p.isBuiltin(call.Fun, "close") {
					return true
				}
				if obj := p.chanVarObj(call.Args[0]); obj != nil {
					if _, hatched := p.UnguardedAt(fname, p.line(call.Pos())); !hatched {
						if len(sites[obj]) == 0 {
							siteOrder = append(siteOrder, obj)
						}
						sites[obj] = append(sites[obj], closeSite{call.Pos(), fname, fd})
					}
				}
				return true
			})
			// Send-after-close, per function body.
			p.closeWalk(fname, fd.Body, map[types.Object]bool{}, &out)
			// Termination-signal rule for condition-free loops.
			p.foreverWalk(fname, fd.Body, &out)
		}
	}

	for _, obj := range siteOrder {
		ss := sites[obj]
		owners := map[*ast.FuncDecl]bool{}
		for _, s := range ss {
			owners[s.fn] = true
		}
		if len(owners) <= 1 {
			continue
		}
		for _, s := range ss {
			out = append(out, p.diag("chandiscipline", s.pos, fmt.Sprintf(
				"channel %s is closed in %d different functions; give it exactly one closing owner (route every shutdown path through one function), or hatch //ftss:unguarded <reason>",
				obj.Name(), len(owners))))
		}
	}
	return out
}

// chanVarObj resolves a channel expression to the variable that names
// it: the field object for x.done (so sibling channels on one struct
// stay distinct), the var object for a local or parameter. Anything
// else — a call result, an index into a slice of channels — is nil and
// exempt.
func (p *Package) chanVarObj(e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			return p.Info.Uses[x.Sel]
		case *ast.Ident:
			return p.objOf(x)
		default:
			return nil
		}
	}
}

// closeWalk tracks the set of channels closed so far on the current
// path and flags sends on them. Branch bodies run on copies (a close
// inside one branch taints only that branch); function literals start
// fresh.
func (p *Package) closeWalk(fname string, body *ast.BlockStmt, closed map[types.Object]bool, out *[]Diagnostic) {
	cp := func(m map[types.Object]bool) map[types.Object]bool {
		c := make(map[types.Object]bool, len(m))
		for k, v := range m {
			c[k] = v
		}
		return c
	}
	chanObj := p.chanVarObj

	var walk func(c map[types.Object]bool, s ast.Stmt)

	var check func(c map[types.Object]bool, n ast.Node)
	check = func(c map[types.Object]bool, n ast.Node) {
		if n == nil {
			return
		}
		ast.Inspect(n, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				fresh := map[types.Object]bool{}
				for _, s := range fl.Body.List {
					walk(fresh, s)
				}
				return false
			}
			return true
		})
	}

	walk = func(c map[types.Object]bool, s ast.Stmt) {
		switch st := s.(type) {
		case nil:
		case *ast.BlockStmt:
			for _, s := range st.List {
				walk(c, s)
			}
		case *ast.ExprStmt:
			check(c, st.X)
			if call, ok := st.X.(*ast.CallExpr); ok && len(call.Args) == 1 && p.isBuiltin(call.Fun, "close") {
				if obj := chanObj(call.Args[0]); obj != nil {
					c[obj] = true
				}
			}
		case *ast.SendStmt:
			check(c, st.Value)
			if obj := chanObj(st.Chan); obj != nil && c[obj] {
				if _, hatched := p.UnguardedAt(fname, p.line(st.Pos())); !hatched {
					*out = append(*out, p.diag("chandiscipline", st.Pos(), fmt.Sprintf(
						"send on %s after close(%s) in the same function: this path panics — close last, or gate the send",
						obj.Name(), obj.Name())))
				}
			}
		case *ast.DeferStmt:
			check(c, st.Call)
		case *ast.GoStmt:
			check(c, st.Call)
		case *ast.AssignStmt:
			for _, e := range st.Rhs {
				check(c, e)
			}
		case *ast.IfStmt:
			walk(c, st.Init)
			check(c, st.Cond)
			walk(cp(c), st.Body)
			walk(cp(c), st.Else)
		case *ast.ForStmt:
			c2 := cp(c)
			walk(c2, st.Init)
			walk(c2, st.Body)
			walk(c2, st.Post)
		case *ast.RangeStmt:
			walk(cp(c), st.Body)
		case *ast.SwitchStmt:
			walk(c, st.Init)
			for _, cl := range st.Body.List {
				if cc, ok := cl.(*ast.CaseClause); ok {
					c2 := cp(c)
					for _, s := range cc.Body {
						walk(c2, s)
					}
				}
			}
		case *ast.TypeSwitchStmt:
			walk(c, st.Init)
			for _, cl := range st.Body.List {
				if cc, ok := cl.(*ast.CaseClause); ok {
					c2 := cp(c)
					for _, s := range cc.Body {
						walk(c2, s)
					}
				}
			}
		case *ast.SelectStmt:
			for _, cl := range st.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok {
					c2 := cp(c)
					walk(c2, cc.Comm)
					for _, s := range cc.Body {
						walk(c2, s)
					}
				}
			}
		case *ast.LabeledStmt:
			walk(c, st.Stmt)
		case *ast.ReturnStmt:
			for _, e := range st.Results {
				check(c, e)
			}
		case *ast.DeclStmt:
			check(c, st.Decl)
		}
	}
	for _, s := range body.List {
		walk(closed, s)
	}
}

// foreverWalk flags every condition-free for loop that contains neither
// a return nor a break targeting it. Nested function literals are
// separate bodies: a return inside one does not terminate this loop.
func (p *Package) foreverWalk(fname string, body *ast.BlockStmt, out *[]Diagnostic) {
	// Loop labels, for matching labeled breaks.
	labels := map[*ast.ForStmt]string{}
	ast.Inspect(body, func(n ast.Node) bool {
		if ls, ok := n.(*ast.LabeledStmt); ok {
			if fs, ok := ls.Stmt.(*ast.ForStmt); ok {
				labels[fs] = ls.Label.Name
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		fs, ok := n.(*ast.ForStmt)
		if !ok || fs.Cond != nil {
			return true
		}
		if _, hatched := p.UnguardedAt(fname, p.line(fs.Pos())); hatched {
			return true
		}
		if !loopTerminates(fs, labels[fs]) {
			*out = append(*out, p.diag("chandiscipline", fs.Pos(),
				"for loop without a condition never reaches a termination signal: add a stop-channel/context case that returns or breaks out, range over the input channel instead, or hatch //ftss:unguarded <reason>"))
		}
		return true
	})
}

// loopTerminates reports whether the condition-free loop body contains
// a return, or a break that exits this loop. depth counts the breakable
// constructs (for/range/switch/select) between the loop body and a
// break statement: an unlabeled break only exits this loop at depth 0.
func loopTerminates(fs *ast.ForStmt, label string) bool {
	found := false
	var scan func(s ast.Stmt, depth int)
	scanBody := func(list []ast.Stmt, depth int) {
		for _, s := range list {
			scan(s, depth)
		}
	}
	scan = func(s ast.Stmt, depth int) {
		if found || s == nil {
			return
		}
		switch st := s.(type) {
		case *ast.ReturnStmt:
			found = true
		case *ast.BranchStmt:
			if st.Tok != token.BREAK {
				return
			}
			if st.Label == nil {
				if depth == 0 {
					found = true
				}
			} else if label != "" && st.Label.Name == label {
				found = true
			}
		case *ast.BlockStmt:
			scanBody(st.List, depth)
		case *ast.LabeledStmt:
			scan(st.Stmt, depth)
		case *ast.IfStmt:
			scan(st.Body, depth)
			scan(st.Else, depth)
		case *ast.ForStmt:
			scan(st.Body, depth+1)
		case *ast.RangeStmt:
			scan(st.Body, depth+1)
		case *ast.SwitchStmt:
			for _, cl := range st.Body.List {
				if cc, ok := cl.(*ast.CaseClause); ok {
					scanBody(cc.Body, depth+1)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, cl := range st.Body.List {
				if cc, ok := cl.(*ast.CaseClause); ok {
					scanBody(cc.Body, depth+1)
				}
			}
		case *ast.SelectStmt:
			for _, cl := range st.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok {
					scanBody(cc.Body, depth+1)
				}
			}
		}
	}
	scan(fs.Body, 0)
	return found
}
