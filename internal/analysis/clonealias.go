package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// CloneAlias checks Clone and Step implementations in deterministic
// packages for the aliasing bug class: returning or storing a
// parameter's (or, for Clone, the receiver's) slice/map without
// copying. The paper's compiler (Figure 2–3, Theorem 4) runs
// full-information rounds in which state is handed from round to round
// and process to process; a Clone that shares a backing array lets one
// process's Step mutate another's history, which no seed sweep reliably
// catches — exactly the bug the PR 2 dense-slice rewrite nearly
// introduced.
//
// The analysis is a forward taint pass: receiver (Clone only) and
// parameters are sources; locals assigned from a source-rooted chain —
// including type assertions and range variables — become sources.
// A violation is a source-rooted slice- or map-typed expression that is
// returned (directly or inside a composite literal) or stored into a
// structure. Calls break taint: append, copy, and clone helpers return
// fresh values.
var CloneAlias = &Analyzer{
	Name: "clonealias",
	Doc:  "flag Clone/Step implementations in ftss:det packages that return or store a parameter's slice/map without copying",
	Tier: "det",
	Run:  runCloneAlias,
}

func runCloneAlias(p *Package) []Diagnostic {
	if !p.Det() {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || (fd.Name.Name != "Clone" && fd.Name.Name != "Step") {
				continue
			}
			out = append(out, p.checkCloneAlias(fd)...)
		}
	}
	return out
}

func (p *Package) checkCloneAlias(fd *ast.FuncDecl) []Diagnostic {
	isClone := fd.Name.Name == "Clone"
	tainted := map[types.Object]bool{}
	names := map[types.Object]string{}

	var recvObj types.Object
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		recvObj = p.Info.Defs[fd.Recv.List[0].Names[0]]
	}
	// For Clone the receiver is the object being copied, so sharing its
	// backing arrays is the bug. For Step, receiver-to-receiver stores
	// are ordinary in-place mutation and stay legal; only the
	// parameters (prior state, received messages) are sources.
	if isClone && recvObj != nil {
		tainted[recvObj] = true
		names[recvObj] = "the receiver"
	}
	for _, fld := range fd.Type.Params.List {
		for _, nm := range fld.Names {
			if o := p.Info.Defs[nm]; o != nil {
				tainted[o] = true
				names[o] = fmt.Sprintf("parameter %s", nm.Name)
			}
		}
	}

	taintIdent := func(e ast.Expr, src types.Object) {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if o := p.objOf(id); o != nil {
				tainted[o] = true
				if names[o] == "" {
					names[o] = names[src]
				}
			}
		}
	}
	rootOf := func(e ast.Expr) types.Object {
		if root := rootIdent(e); root != nil {
			if o := p.objOf(root); o != nil && tainted[o] {
				return o
			}
		}
		return nil
	}

	// Forward taint pass, in source order.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) == len(s.Rhs) {
				for i := range s.Lhs {
					if src := rootOf(s.Rhs[i]); src != nil {
						taintIdent(s.Lhs[i], src)
					}
				}
			} else if len(s.Rhs) == 1 {
				if src := rootOf(s.Rhs[0]); src != nil {
					for _, lh := range s.Lhs {
						taintIdent(lh, src)
					}
				}
			}
		case *ast.RangeStmt:
			if src := rootOf(s.X); src != nil {
				if s.Key != nil {
					taintIdent(s.Key, src)
				}
				if s.Value != nil {
					taintIdent(s.Value, src)
				}
			}
		}
		return true
	})

	var out []Diagnostic
	// report walks an expression that is escaping (returned or stored),
	// recursing through composite literals, and flags source-rooted
	// slice/map parts.
	var report func(e ast.Expr, verb string)
	report = func(e ast.Expr, verb string) {
		switch x := e.(type) {
		case *ast.CompositeLit:
			for _, elt := range x.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					report(kv.Value, verb)
				} else {
					report(elt, verb)
				}
			}
			return
		case *ast.ParenExpr:
			report(x.X, verb)
			return
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				report(x.X, verb)
				return
			}
		}
		src := rootOf(e)
		if src == nil {
			return
		}
		t := p.typeOf(e)
		if t == nil {
			return
		}
		var kind string
		switch t.Underlying().(type) {
		case *types.Slice:
			kind = "slice"
		case *types.Map:
			kind = "map"
		default:
			return
		}
		out = append(out, p.diag("clonealias", e.Pos(), fmt.Sprintf(
			"%s %s %s, which aliases %s's backing %s; deep-copy it — full-information state must be cloned, never aliased, or one process's Step mutates another's history",
			fd.Name.Name, verb, types.ExprString(e), names[src], kind)))
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				if id, ok := r.(*ast.Ident); ok && isClone && recvObj != nil && p.objOf(id) == recvObj {
					out = append(out, p.diag("clonealias", r.Pos(),
						"Clone returns its receiver unchanged; it must return an independent deep copy"))
					continue
				}
				report(r, "returns")
			}
		case *ast.AssignStmt:
			isStore := func(e ast.Expr) bool {
				switch e.(type) {
				case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
					return true
				}
				return false
			}
			for i, rh := range s.Rhs {
				stored := false
				if len(s.Lhs) == len(s.Rhs) {
					stored = isStore(s.Lhs[i])
				} else {
					for _, lh := range s.Lhs {
						stored = stored || isStore(lh)
					}
				}
				switch {
				case stored:
					// Storing into a structure that outlives the call.
					report(rh, "stores")
				case isCompositeValue(rh):
					// Building a composite around a tainted slice/map
					// is the same bug even when parked in a local
					// first.
					report(rh, "builds")
				}
			}
		}
		return true
	})
	return out
}

// isCompositeValue reports whether e is a composite literal, possibly
// behind &.
func isCompositeValue(e ast.Expr) bool {
	if u, ok := e.(*ast.UnaryExpr); ok {
		e = u.X
	}
	_, ok := e.(*ast.CompositeLit)
	return ok
}
