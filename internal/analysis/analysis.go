// Package analysis implements the ftss-lint analyzer suite: static
// checks that enforce the repo's determinism contract (DESIGN.md §4,
// "the determinism contract"), its concurrency protocols (§11), and
// the paper's protocol invariants at every configuration — not just
// the seeds the dynamic tests happen to sweep. One unseeded rand.Intn,
// one time.Now, or one unsorted map iteration feeding a rendered table
// silently breaks reproducibility of the E1–E14 experiment output; one
// field read outside its mutex is a data race no sampled -race seed
// reliably catches. This package catches both classes at analysis time.
//
// Strictness is per package, in two tiers. Every internal/... package
// declares exactly one tier in a file header (written //-style with no
// space, like //go:build, conventionally the last line of the package
// doc comment):
//
//   - "ftss:det" — the deterministic core. The determinism analyzers
//     run: nowallclock, seededrand, maporder, nogoroutine, clonealias.
//   - "ftss:conc" — the concurrent shell (the live runtime, the wire
//     transport, the cluster layer, telemetry, CLI plumbing). The
//     concurrency analyzers run: guardedby, atomicmix, chandiscipline,
//     waitbalance.
//
// An internal package with no tier header is itself a finding; cmd/
// binaries and examples stay exempt. Test files are never analyzed.
//
// Escape hatches are directives too: "ftss:orderless <reason>" on a map
// range whose order provably cannot reach output, a file-level
// "ftss:pool <reason>" sanctioning goroutine fan-out in a worker-pool
// file (such a file also gets the chandiscipline and waitbalance
// checks, even inside a det package), and "ftss:unguarded <reason>" on
// a line the concurrency analyzers should not police. Annotations feed
// the conc tier as well: "ftss:guardedby <mu>" on a struct field binds
// it to the named sibling mutex. Every escape hatch must carry a
// reason; the directive analyzer enforces that.
//
// Everything here is stdlib-only (go/parser, go/ast, go/types): the
// module stays dependency-free.
//
//ftss:det diagnostics are CI-gated artifacts and must be byte-identical across runs and worker counts
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding, addressed by file:line:col. File is
// relative to the module root, so output is stable across machines and
// diffs cleanly as a committed CI artifact.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.File, d.Line, d.Col, d.Message, d.Analyzer)
}

// Analyzer is one named check over a loaded package.
type Analyzer struct {
	Name string
	Doc  string
	// Tier is "det", "conc", or "" for checks that always run (the
	// directive well-formedness analyzer). Tier-scoped analyzers still
	// decide applicability per package themselves; the field exists for
	// the CLI's -tier filter and the report.
	Tier string
	Run  func(p *Package) []Diagnostic
}

// All returns every analyzer in name order.
func All() []*Analyzer {
	return []*Analyzer{
		AtomicMix,
		ChanDiscipline,
		CloneAlias,
		Directives,
		GuardedBy,
		MapOrder,
		NoGoroutine,
		NoWallClock,
		ObsNames,
		SeededRand,
		WaitBalance,
	}
}

// ForTier returns the analyzers of one tier ("det" or "conc"), plus the
// tier-independent checks; "all" (or "") returns every analyzer.
func ForTier(tier string) []*Analyzer {
	if tier == "all" || tier == "" {
		return All()
	}
	var out []*Analyzer
	for _, a := range All() {
		if a.Tier == tier || a.Tier == "" {
			out = append(out, a)
		}
	}
	return out
}

// Lint runs every analyzer over every package and returns the combined
// diagnostics in sorted order.
func Lint(pkgs []*Package) []Diagnostic {
	return LintWith(pkgs, All())
}

// LintWith runs the given analyzers over every package and returns the
// combined diagnostics in sorted order.
func LintWith(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, p := range pkgs {
		for _, a := range analyzers {
			out = append(out, a.Run(p)...)
		}
	}
	SortDiagnostics(out)
	return out
}

// SortDiagnostics orders diagnostics by (file, line, col, analyzer,
// message) — the stable order the JSON report and the fixture tests
// rely on.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// Package is one loaded, type-checked package plus its parsed ftss
// directives — the unit every analyzer operates on.
type Package struct {
	// Path is the import path ("ftss/internal/history"), synthetic for
	// directories outside the module.
	Path string
	// Dir is the absolute directory; Root the module root that File
	// fields of diagnostics are made relative to.
	Dir  string
	Root string
	Name string

	Fset *token.FileSet
	// Files are the non-test source files, sorted by filename;
	// FileNames holds the matching root-relative names.
	Files     []*ast.File
	FileNames []string

	Types *types.Package
	Info  *types.Info
	// TypeErrors are soft type-checking errors (analysis proceeds on
	// partial information).
	TypeErrors []error

	Directives []Directive

	det       bool
	conc      bool
	orderless map[string]map[int]Directive
	pool      map[string]Directive
	guarded   map[string]map[int]Directive
	unguarded map[string]map[int]Directive
}

// Det reports whether the package carries the ftss:det annotation.
func (p *Package) Det() bool { return p.det }

// Conc reports whether the package carries the ftss:conc annotation.
func (p *Package) Conc() bool { return p.conc }

// lineDirective looks a directive up by file line: same line (trailing
// comment) or the line directly above, the attachment convention every
// line-scoped directive shares.
func lineDirective(byFile map[string]map[int]Directive, file string, line int) (Directive, bool) {
	byLine := byFile[file]
	if d, ok := byLine[line]; ok {
		return d, true
	}
	d, ok := byLine[line-1]
	return d, ok
}

// OrderlessAt returns the ftss:orderless directive governing a range
// statement at the given file line: on the same line (trailing comment)
// or the line directly above.
func (p *Package) OrderlessAt(file string, line int) (Directive, bool) {
	return lineDirective(p.orderless, file, line)
}

// GuardedByAt returns the ftss:guardedby directive annotating a struct
// field at the given file line (same line or the line directly above).
func (p *Package) GuardedByAt(file string, line int) (Directive, bool) {
	return lineDirective(p.guarded, file, line)
}

// UnguardedAt returns the ftss:unguarded escape hatch governing the
// given file line (same line or the line directly above).
func (p *Package) UnguardedAt(file string, line int) (Directive, bool) {
	return lineDirective(p.unguarded, file, line)
}

// PoolDirective returns the file-level ftss:pool directive of the named
// file, if any.
func (p *Package) PoolDirective(file string) (Directive, bool) {
	d, ok := p.pool[file]
	return d, ok
}

// concFiles returns the indices of the files subject to the concurrency
// discipline checks (chandiscipline, waitbalance): every file of a
// //ftss:conc package, and the //ftss:pool-sanctioned worker-pool files
// of any other package — a det package's only sanctioned goroutines
// still owe the channel and WaitGroup protocol.
func (p *Package) concFiles() []int {
	var idx []int
	for i, name := range p.FileNames {
		if p.conc {
			idx = append(idx, i)
			continue
		}
		if _, ok := p.pool[name]; ok {
			idx = append(idx, i)
		}
	}
	return idx
}

// indexDirectives builds the lookup tables behind the At accessors and
// the tier flags.
func (p *Package) indexDirectives() {
	p.orderless = map[string]map[int]Directive{}
	p.pool = map[string]Directive{}
	p.guarded = map[string]map[int]Directive{}
	p.unguarded = map[string]map[int]Directive{}
	index := func(m map[string]map[int]Directive, d Directive) {
		if m[d.File] == nil {
			m[d.File] = map[int]Directive{}
		}
		m[d.File][d.Line] = d
	}
	for _, d := range p.Directives {
		switch d.Kind {
		case "det":
			if d.header {
				p.det = true
			}
		case "conc":
			if d.header {
				p.conc = true
			}
		case "orderless":
			index(p.orderless, d)
		case "pool":
			p.pool[d.File] = d
		case "guardedby":
			index(p.guarded, d)
		case "unguarded":
			index(p.unguarded, d)
		}
	}
}

// diag builds a Diagnostic at the given position.
func (p *Package) diag(analyzer string, pos token.Pos, msg string) Diagnostic {
	ps := p.Fset.Position(pos)
	return Diagnostic{
		Analyzer: analyzer,
		File:     p.relFile(ps.Filename),
		Line:     ps.Line,
		Col:      ps.Column,
		Message:  msg,
	}
}

// line is the 1-based line of a position.
func (p *Package) line(pos token.Pos) int { return p.Fset.Position(pos).Line }

// relFile makes a filename relative to the module root when possible.
func (p *Package) relFile(fn string) string {
	if r, err := filepath.Rel(p.Root, fn); err == nil && r != "" && !strings.HasPrefix(r, "..") {
		return filepath.ToSlash(r)
	}
	return filepath.ToSlash(fn)
}

// objOf resolves an identifier to its object, whether it is a use or a
// definition site.
func (p *Package) objOf(id *ast.Ident) types.Object {
	if o := p.Info.Uses[id]; o != nil {
		return o
	}
	return p.Info.Defs[id]
}

// selectsPackage reports whether sel selects a member of the imported
// package with the given path (alias-proof: resolved through the type
// checker, so a local variable shadowing the import does not match).
func (p *Package) selectsPackage(sel *ast.SelectorExpr, pkgPath string) bool {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == pkgPath
}

// typeOf returns the static type of an expression, or nil.
func (p *Package) typeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// isBuiltin reports whether the call target is the named builtin.
func (p *Package) isBuiltin(fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = p.objOf(id).(*types.Builtin)
	return ok
}

// rootIdent walks to the identifier at the root of a selector / index /
// slice / deref / type-assert chain; a call or literal anywhere on the
// way yields nil (a call result is a fresh value, not an alias).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.IndexListExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		default:
			return nil
		}
	}
}

// within reports whether pos lies inside node.
func within(pos token.Pos, node ast.Node) bool {
	return node.Pos() <= pos && pos <= node.End()
}
