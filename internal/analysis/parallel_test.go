package analysis

import (
	"path/filepath"
	"reflect"
	"testing"
)

// TestLintDirsWorkerCountInvariant pins the pool contract: packages,
// diagnostics, and their order are identical for any worker count,
// including the inline workers<=1 path.
func TestLintDirsWorkerCountInvariant(t *testing.T) {
	root := filepath.Join("..", "..")
	var dirs []string
	for _, name := range []string{
		"chandiscipline", "clean", "directive", "guardedby", "maporder", "wallclock", "waitbalance",
	} {
		dirs = append(dirs, filepath.Join("testdata", "src", name))
	}

	pkgsSeq, seq, err := LintDirs(root, dirs, 1, All())
	if err != nil {
		t.Fatalf("LintDirs(workers=1): %v", err)
	}
	if len(seq) == 0 {
		t.Fatal("sequential run found no diagnostics; the fixtures should produce findings")
	}
	for _, workers := range []int{2, 4, 8, 32} {
		pkgs, par, err := LintDirs(root, dirs, workers, All())
		if err != nil {
			t.Fatalf("LintDirs(workers=%d): %v", workers, err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("workers=%d: diagnostics differ from sequential run\nseq: %v\npar: %v", workers, seq, par)
		}
		if len(pkgs) != len(pkgsSeq) {
			t.Fatalf("workers=%d: %d packages, want %d", workers, len(pkgs), len(pkgsSeq))
		}
		for i := range pkgs {
			if pkgs[i].Path != pkgsSeq[i].Path {
				t.Errorf("workers=%d: package %d is %s, want %s (directory order)", workers, i, pkgs[i].Path, pkgsSeq[i].Path)
			}
		}
	}
}

// TestLintDirsTierFilter pins ForTier composition through LintDirs: the
// det tier sees no conc findings and vice versa, while the directive
// analyzer runs in both.
func TestLintDirsTierFilter(t *testing.T) {
	root := filepath.Join("..", "..")
	dirs := []string{
		filepath.Join("testdata", "src", "guardedby"),
		filepath.Join("testdata", "src", "wallclock"),
	}
	_, det, err := LintDirs(root, dirs, 2, ForTier("det"))
	if err != nil {
		t.Fatal(err)
	}
	_, conc, err := LintDirs(root, dirs, 2, ForTier("conc"))
	if err != nil {
		t.Fatal(err)
	}
	count := func(ds []Diagnostic, analyzer string) int {
		n := 0
		for _, d := range ds {
			if d.Analyzer == analyzer {
				n++
			}
		}
		return n
	}
	if count(det, "nowallclock") == 0 || count(det, "guardedby") != 0 {
		t.Errorf("det tier: %v, want nowallclock findings and no guardedby findings", det)
	}
	if count(conc, "guardedby") == 0 || count(conc, "nowallclock") != 0 {
		t.Errorf("conc tier: %v, want guardedby findings and no nowallclock findings", conc)
	}
}

// TestForTier pins the tier partition of the suite: every analyzer is
// det, conc, or tier-independent, and ForTier returns the matching
// subset plus the independent ones.
func TestForTier(t *testing.T) {
	if got, want := len(ForTier("all")), len(All()); got != want {
		t.Errorf("ForTier(all) = %d analyzers, want %d", got, want)
	}
	for _, tier := range []string{"det", "conc"} {
		for _, a := range ForTier(tier) {
			if a.Tier != tier && a.Tier != "" {
				t.Errorf("ForTier(%s) includes %s (tier %q)", tier, a.Name, a.Tier)
			}
		}
	}
	names := func(as []*Analyzer) map[string]bool {
		m := map[string]bool{}
		for _, a := range as {
			m[a.Name] = true
		}
		return m
	}
	det, conc := names(ForTier("det")), names(ForTier("conc"))
	for _, n := range []string{"nowallclock", "seededrand", "maporder", "nogoroutine", "clonealias", "directive"} {
		if !det[n] {
			t.Errorf("ForTier(det) is missing %s", n)
		}
	}
	for _, n := range []string{"guardedby", "atomicmix", "chandiscipline", "waitbalance", "directive"} {
		if !conc[n] {
			t.Errorf("ForTier(conc) is missing %s", n)
		}
	}
}
