package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GuardedBy enforces //ftss:guardedby annotations in //ftss:conc
// packages: a struct field annotated "//ftss:guardedby mu" may only be
// read or written while the named sibling mutex is held. The check is
// intra-procedural lock-state tracking over each function body:
//
//   - X.Lock() / X.RLock() on a sync.Mutex or sync.RWMutex adds X to
//     the held set; X.Unlock() / X.RUnlock() removes it; a deferred
//     unlock keeps the lock held for the rest of the body (it releases
//     at return).
//   - Branch bodies (if, for, range, switch, select) are analyzed on a
//     copy of the held set and their lock effects are dropped
//     afterwards — conservative, so a lock taken inside one branch
//     never excuses an access after the join.
//   - Function literals are separate goroutine-candidate bodies and
//     start with nothing held.
//   - A method whose name ends in "Locked" documents the convention
//     that its caller holds the receiver's locks: it starts with every
//     guard of the receiver held.
//
// An access of a guarded field base.f requires "base.mu" (by
// expression spelling) in the held set; anything else is a finding
// unless the line carries a //ftss:unguarded <reason> hatch — the
// standard hatch for pre-publication initialization, where the object
// is not yet reachable by any other goroutine.
var GuardedBy = &Analyzer{
	Name: "guardedby",
	Doc:  "fields annotated //ftss:guardedby mu in ftss:conc packages are only accessed while the named mutex is held",
	Tier: "conc",
	Run:  runGuardedBy,
}

func runGuardedBy(p *Package) []Diagnostic {
	if !p.Conc() {
		return nil
	}
	var out []Diagnostic

	// Pass 1: bind //ftss:guardedby directives to struct fields.
	// guards: field object -> guarding mutex field name.
	// typeGuards: struct type name -> set of mutex names (for *Locked).
	guards := map[types.Object]string{}
	typeGuards := map[string][]string{}
	consumed := map[[2]interface{}]bool{}
	for i, f := range p.Files {
		fname := p.FileNames[i]
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, fld := range st.Fields.List {
					d, ok := p.GuardedByAt(fname, p.line(fld.Pos()))
					if !ok || d.Reason == "" {
						continue
					}
					consumed[[2]interface{}{d.File, d.Line}] = true
					mu := strings.Fields(d.Reason)[0]
					if !p.structHasMutex(st, mu) {
						out = append(out, Diagnostic{
							Analyzer: "guardedby", File: d.File, Line: d.Line, Col: 1,
							Message: fmt.Sprintf("//ftss:guardedby %s names no sibling sync.Mutex/RWMutex field %q in struct %s", mu, mu, ts.Name.Name),
						})
						continue
					}
					for _, name := range fld.Names {
						if obj := p.Info.Defs[name]; obj != nil {
							guards[obj] = mu
						}
					}
					if !contains(typeGuards[ts.Name.Name], mu) {
						typeGuards[ts.Name.Name] = append(typeGuards[ts.Name.Name], mu)
					}
				}
			}
		}
	}
	// A guardedby directive that bound to no struct field is dead — and
	// silently unenforced, which is worse than absent.
	for _, d := range p.Directives {
		if d.Kind == "guardedby" && !consumed[[2]interface{}{d.File, d.Line}] {
			out = append(out, Diagnostic{
				Analyzer: "guardedby", File: d.File, Line: d.Line, Col: 1,
				Message: "//ftss:guardedby is not attached to a struct field (put it on the field line or the line directly above)",
			})
		}
	}
	if len(guards) == 0 {
		return out
	}

	// Pass 2: lock-state walk over every function body.
	for i, f := range p.Files {
		fname := p.FileNames[i]
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			held := map[string]bool{}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				if recv, typ := recvNameType(fd); recv != "" {
					for _, mu := range typeGuards[typ] {
						held[recv+"."+mu] = true
					}
				}
			}
			p.lockWalk(fname, fd.Body, held, guards, &out)
		}
	}
	return out
}

// contains reports whether the slice holds the string.
func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// structHasMutex reports whether the struct literally declares a field
// of the given name whose type is sync.Mutex or sync.RWMutex (possibly
// a pointer to one).
func (p *Package) structHasMutex(st *ast.StructType, name string) bool {
	for _, fld := range st.Fields.List {
		for _, n := range fld.Names {
			if n.Name == name {
				return isSyncType(p.typeOf(fld.Type), "Mutex", "RWMutex")
			}
		}
	}
	return false
}

// recvNameType extracts the receiver variable name and the receiver's
// type name from a method declaration.
func recvNameType(fd *ast.FuncDecl) (string, string) {
	if fd.Recv == nil || len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return "", ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	id, ok := t.(*ast.Ident)
	if !ok {
		return "", ""
	}
	return fd.Recv.List[0].Names[0].Name, id.Name
}

// isSyncType reports whether t (or its pointee) is one of the named
// types from package sync.
func isSyncType(t types.Type, names ...string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	for _, name := range names {
		if obj.Name() == name {
			return true
		}
	}
	return false
}

// lockWalk analyzes one statement sequence under the given held set,
// mutating held as lock statements execute and reporting every guarded
// access made while its mutex is not held.
func (p *Package) lockWalk(fname string, body *ast.BlockStmt, held map[string]bool, guards map[types.Object]string, out *[]Diagnostic) {
	cp := func(h map[string]bool) map[string]bool {
		c := make(map[string]bool, len(h))
		for k, v := range h {
			c[k] = v
		}
		return c
	}

	var walk func(h map[string]bool, s ast.Stmt)

	// check inspects an expression (or any node) for guarded-field
	// accesses under h; nested function literals restart with an empty
	// held set (they may run on another goroutine).
	var check func(h map[string]bool, n ast.Node)
	check = func(h map[string]bool, n ast.Node) {
		if n == nil {
			return
		}
		ast.Inspect(n, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				fresh := map[string]bool{}
				for _, s := range x.Body.List {
					walk(fresh, s)
				}
				return false
			case *ast.SelectorExpr:
				mu, ok := guards[p.Info.Uses[x.Sel]]
				if !ok {
					return true
				}
				key := types.ExprString(x.X) + "." + mu
				if h[key] {
					return true
				}
				if _, hatched := p.UnguardedAt(fname, p.line(x.Pos())); hatched {
					return true
				}
				*out = append(*out, p.diag("guardedby", x.Sel.Pos(), fmt.Sprintf(
					"%s is accessed without holding %s (//ftss:guardedby %s): lock it first, move the access into a *Locked helper, or hatch //ftss:unguarded <reason>",
					types.ExprString(x), key, mu)))
			}
			return true
		})
	}

	// effect applies the lock-state change of a statement-position call.
	effect := func(h map[string]bool, e ast.Expr) {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !isSyncType(p.typeOf(sel.X), "Mutex", "RWMutex") {
			return
		}
		key := types.ExprString(sel.X)
		switch sel.Sel.Name {
		case "Lock", "RLock":
			h[key] = true
		case "Unlock", "RUnlock":
			delete(h, key)
		}
	}

	walk = func(h map[string]bool, s ast.Stmt) {
		switch st := s.(type) {
		case nil:
		case *ast.BlockStmt:
			for _, s := range st.List {
				walk(h, s)
			}
		case *ast.ExprStmt:
			check(h, st.X)
			effect(h, st.X)
		case *ast.DeferStmt:
			// A deferred unlock releases at return: the lock stays held
			// for the remainder of the body, so no effect here. Deferred
			// literals run via check (fresh state).
			check(h, st.Call)
		case *ast.GoStmt:
			check(h, st.Call)
		case *ast.AssignStmt:
			for _, e := range st.Rhs {
				check(h, e)
			}
			for _, e := range st.Lhs {
				check(h, e)
			}
		case *ast.IfStmt:
			walk(h, st.Init)
			check(h, st.Cond)
			walk(cp(h), st.Body)
			walk(cp(h), st.Else)
		case *ast.ForStmt:
			h2 := cp(h)
			walk(h2, st.Init)
			check(h2, st.Cond)
			walk(h2, st.Body)
			walk(h2, st.Post)
		case *ast.RangeStmt:
			check(h, st.X)
			walk(cp(h), st.Body)
		case *ast.SwitchStmt:
			walk(h, st.Init)
			check(h, st.Tag)
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					h2 := cp(h)
					for _, e := range cc.List {
						check(h2, e)
					}
					for _, s := range cc.Body {
						walk(h2, s)
					}
				}
			}
		case *ast.TypeSwitchStmt:
			walk(h, st.Init)
			check(h, st.Assign)
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					h2 := cp(h)
					for _, s := range cc.Body {
						walk(h2, s)
					}
				}
			}
		case *ast.SelectStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					h2 := cp(h)
					walk(h2, cc.Comm)
					for _, s := range cc.Body {
						walk(h2, s)
					}
				}
			}
		case *ast.LabeledStmt:
			walk(h, st.Stmt)
		case *ast.ReturnStmt:
			for _, e := range st.Results {
				check(h, e)
			}
		case *ast.SendStmt:
			check(h, st.Chan)
			check(h, st.Value)
		case *ast.IncDecStmt:
			check(h, st.X)
		case *ast.DeclStmt:
			check(h, st.Decl)
		}
	}
	for _, s := range body.List {
		walk(held, s)
	}
}
