package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// WaitBalance enforces the sync.WaitGroup protocol in //ftss:conc
// packages and //ftss:pool worker files:
//
//   - Pairing: a WaitGroup variable with Add calls but no Done call
//     anywhere in scope deadlocks Wait; Done with no Add panics with a
//     negative counter. Pairing is per variable across the package —
//     Add in the spawner and a deferred Done in the worker is the
//     normal split.
//   - Done placement: a Done outside defer is skipped by any early
//     return before it, leaving Wait hanging. A plain Done call passes
//     only when it is a direct statement of its function body with no
//     return before it (the single fall-through path); anything else
//     must be "defer wg.Done()".
//   - Add placement: an Add inside the spawned goroutine itself races
//     with Wait — Wait can observe the counter before the goroutine
//     runs Add. Add must happen before the go statement.
//
// Hatch a deliberate exception per line with //ftss:unguarded <reason>.
var WaitBalance = &Analyzer{
	Name: "waitbalance",
	Doc:  "WaitGroup Add/Done pairing in ftss:conc packages: Done via defer or on the sole fall-through path, Add before the go statement",
	Tier: "conc",
	Run:  runWaitBalance,
}

func runWaitBalance(p *Package) []Diagnostic {
	var out []Diagnostic

	// wgCall unpacks a sel call X.Add/Done/Wait on a sync.WaitGroup and
	// resolves the WaitGroup variable (field object for t.wg, var object
	// for a local or parameter).
	wgCall := func(call *ast.CallExpr) (types.Object, string, bool) {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return nil, "", false
		}
		m := sel.Sel.Name
		if m != "Add" && m != "Done" && m != "Wait" {
			return nil, "", false
		}
		if !isSyncType(p.typeOf(sel.X), "WaitGroup") {
			return nil, "", false
		}
		var id *ast.Ident
		switch x := sel.X.(type) {
		case *ast.Ident:
			id = x
		case *ast.SelectorExpr:
			id = x.Sel
		default:
			id = rootIdent(sel.X)
		}
		if id == nil {
			return nil, "", false
		}
		obj := p.objOf(id)
		return obj, m, obj != nil
	}

	type site struct {
		pos  token.Pos
		file string
	}
	adds := map[types.Object][]site{}
	dones := map[types.Object][]site{}
	var addOrder, doneOrder []types.Object // first-seen order, for deterministic iteration

	for _, i := range p.concFiles() {
		f, fname := p.Files[i], p.FileNames[i]

		// Global Add/Done tallies and the Add-inside-go rule.
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if obj, m, ok := wgCall(x); ok {
					switch m {
					case "Add":
						if len(adds[obj]) == 0 {
							addOrder = append(addOrder, obj)
						}
						adds[obj] = append(adds[obj], site{x.Pos(), fname})
					case "Done":
						if len(dones[obj]) == 0 {
							doneOrder = append(doneOrder, obj)
						}
						dones[obj] = append(dones[obj], site{x.Pos(), fname})
					}
				}
			case *ast.GoStmt:
				fl, ok := x.Call.Fun.(*ast.FuncLit)
				if !ok {
					return true
				}
				ast.Inspect(fl.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if _, m, ok := wgCall(call); ok && m == "Add" {
						if _, hatched := p.UnguardedAt(fname, p.line(call.Pos())); !hatched {
							out = append(out, p.diag("waitbalance", call.Pos(),
								"WaitGroup.Add inside the spawned goroutine races with Wait (Wait can run before this Add): call Add before the go statement, or hatch //ftss:unguarded <reason>"))
						}
					}
					return true
				})
			}
			return true
		})

		// Done-placement rule, per function body (literals are their own
		// bodies: a Done inside a worker literal is judged against that
		// literal's returns, not the spawner's).
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			bodies := []*ast.BlockStmt{fd.Body}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					bodies = append(bodies, fl.Body)
				}
				return true
			})
			for _, body := range bodies {
				p.checkDonePlacement(fname, body, wgCall, &out)
			}
		}
	}

	// Pairing rule, per WaitGroup variable across the whole scope.
	flagUnpaired := func(order []types.Object, sites map[types.Object][]site, other map[types.Object][]site, msg string) {
		for _, obj := range order {
			if len(other[obj]) > 0 {
				continue
			}
			s := sites[obj][0]
			if _, hatched := p.UnguardedAt(s.file, p.line(s.pos)); hatched {
				continue
			}
			out = append(out, p.diag("waitbalance", s.pos, fmt.Sprintf(msg, obj.Name())))
		}
	}
	flagUnpaired(addOrder, adds, dones,
		"WaitGroup %s has Add calls but no Done anywhere in this package's concurrent files: Wait deadlocks — pair every Add with a (deferred) Done, or hatch //ftss:unguarded <reason>")
	flagUnpaired(doneOrder, dones, adds,
		"WaitGroup %s has Done calls but no Add anywhere in this package's concurrent files: the counter goes negative and panics — add the matching Add, or hatch //ftss:unguarded <reason>")

	return out
}

// checkDonePlacement flags every non-deferred Done call in the body
// that is not a direct top-level statement with no return before it.
// Nested literal bodies are skipped here — the caller visits each
// literal body separately.
func (p *Package) checkDonePlacement(fname string, body *ast.BlockStmt, wgCall func(*ast.CallExpr) (types.Object, string, bool), out *[]Diagnostic) {
	direct := map[*ast.CallExpr]bool{}
	for _, s := range body.List {
		if es, ok := s.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok {
				direct[call] = true
			}
		}
	}

	var returns []token.Pos
	var doneCalls []*ast.CallExpr
	var scan func(n ast.Node, deferred bool)
	scan = func(n ast.Node, deferred bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				return false // its own body, judged separately
			case *ast.ReturnStmt:
				returns = append(returns, x.Pos())
			case *ast.DeferStmt:
				scan(x.Call, true)
				return false
			case *ast.CallExpr:
				if _, m, ok := wgCall(x); ok && m == "Done" && !deferred {
					doneCalls = append(doneCalls, x)
				}
			}
			return true
		})
	}
	scan(body, false)

	for _, call := range doneCalls {
		bad := !direct[call]
		if !bad {
			for _, r := range returns {
				if r < call.Pos() {
					bad = true
					break
				}
			}
		}
		if !bad {
			continue
		}
		if _, hatched := p.UnguardedAt(fname, p.line(call.Pos())); hatched {
			continue
		}
		*out = append(*out, p.diag("waitbalance", call.Pos(),
			"WaitGroup.Done outside defer: an early return before this line leaves the counter unbalanced and Wait hanging — write \"defer wg.Done()\" at the top of the goroutine, or hatch //ftss:unguarded <reason>"))
	}
}
