package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// SeededRand forbids the package-level math/rand functions in
// deterministic packages: they draw from the process-global source, so
// results depend on whatever else has consumed randomness — across
// goroutines, across test order, across runs. Randomness must flow
// through an injected *rand.Rand derived from the repetition seed
// (rand.New(rand.NewSource(seed))), the pattern every experiment and
// chaos plan already follows.
var SeededRand = &Analyzer{
	Name: "seededrand",
	Doc:  "forbid global math/rand functions in ftss:det packages; randomness must come from an injected *rand.Rand",
	Tier: "det",
	Run:  runSeededRand,
}

// allowedRandFuncs construct seeded generators without touching the
// global source (v1 and v2 spellings).
var allowedRandFuncs = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// randTypeNames lets the degraded mode (stdlib import unavailable, no
// object info) still pass type references like rand.Rand.
var randTypeNames = map[string]bool{
	"Rand": true, "Source": true, "Source64": true, "Zipf": true,
	"PCG": true, "ChaCha8": true,
}

func runSeededRand(p *Package) []Diagnostic {
	if !p.Det() {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if !p.selectsPackage(sel, "math/rand") && !p.selectsPackage(sel, "math/rand/v2") {
				return true
			}
			name := sel.Sel.Name
			if allowedRandFuncs[name] {
				return true
			}
			switch p.objOf(sel.Sel).(type) {
			case *types.Func:
				// flagged below
			case nil:
				// Degraded stdlib import: no member info. Assume
				// function unless it is a known type name.
				if randTypeNames[name] {
					return true
				}
			default:
				return true // type or const reference, not a draw
			}
			out = append(out, p.diag("seededrand", sel.Pos(), fmt.Sprintf(
				"math/rand.%s draws from the process-global source; in a //ftss:det package randomness must come from an injected *rand.Rand built as rand.New(rand.NewSource(seed)) so every run is a pure function of the repetition seed",
				name)))
			return true
		})
	}
	return out
}
