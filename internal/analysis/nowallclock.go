package analysis

import (
	"fmt"
	"go/ast"
)

// NoWallClock forbids wall-clock reads and timer construction in
// deterministic packages. Experiment output must be a pure function of
// seeds (the PR 2 determinism contract); reading the clock — even for a
// log line — makes two runs of the same seed diverge. Time-driven code
// belongs in internal/sim/live, which is deliberately outside the
// contract.
var NoWallClock = &Analyzer{
	Name: "nowallclock",
	Doc:  "forbid time.Now/Since/Until/Sleep/After/Tick/AfterFunc/NewTimer/NewTicker in ftss:det packages",
	Tier: "det",
	Run:  runNoWallClock,
}

// bannedTimeFuncs are the package-level time functions that read or
// schedule against the wall clock. Constructors from explicit instants
// (time.Unix, time.Date) and pure arithmetic (Duration, Time methods)
// stay legal.
var bannedTimeFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
}

func runNoWallClock(p *Package) []Diagnostic {
	if !p.Det() {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if p.selectsPackage(sel, "time") && bannedTimeFuncs[sel.Sel.Name] {
				out = append(out, p.diag("nowallclock", sel.Pos(), fmt.Sprintf(
					"time.%s reads the wall clock; a //ftss:det package must be a pure function of its inputs — take instants/durations as parameters, or move the code to internal/sim/live",
					sel.Sel.Name)))
			}
			return true
		})
	}
	return out
}
