package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// MapOrder flags map iteration in deterministic packages when the loop
// body lets the randomized iteration order escape: appending to a slice
// that outlives the loop, sending on a channel, writing output, or
// mutating indexed state at an index other than the range key.
//
// Order-independent idioms pass without annotation:
//
//   - keyed writes (out[k] = v inside "for k, v := range m"): every
//     iteration touches its own slot, so order cannot matter;
//   - commutative folds (sum += v, max tracking, set union);
//   - collect-then-sort (append the keys, sort.X/slices.X them in the
//     same function before use).
//
// Anything else needs the keys sorted first, or a
// //ftss:orderless <reason> directive on the loop.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flag map ranges in ftss:det packages whose body lets the randomized iteration order escape",
	Tier: "det",
	Run:  runMapOrder,
}

func runMapOrder(p *Package) []Diagnostic {
	if !p.Det() {
		return nil
	}
	var out []Diagnostic
	for i, f := range p.Files {
		fname := p.FileNames[i]
		// Walk function by function so the collect-then-sort idiom can
		// look for the sort call elsewhere in the same function.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok || !p.isMapType(rs.X) {
					return true
				}
				if _, ok := p.OrderlessAt(fname, p.line(rs.Pos())); ok {
					return true // annotated; the directive analyzer polices the reason
				}
				if trigger, ok := p.mapRangeTrigger(fd, rs); ok {
					out = append(out, p.diag("maporder", rs.Pos(), fmt.Sprintf(
						"range over map %s in a //ftss:det package %s; iteration order is randomized per run — sort the keys first, or annotate the loop //ftss:orderless <reason>",
						types.ExprString(rs.X), trigger)))
				}
				return true
			})
		}
	}
	return out
}

// isMapType reports whether the expression's static type is a map
// (possibly behind a named type, like proc.Set).
func (p *Package) isMapType(e ast.Expr) bool {
	t := p.typeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// mapRangeTrigger scans a map-range body for the first order-escaping
// operation, returning its description.
func (p *Package) mapRangeTrigger(fd *ast.FuncDecl, rs *ast.RangeStmt) (string, bool) {
	var keyObj types.Object
	if id, ok := rs.Key.(*ast.Ident); ok && id.Name != "_" {
		keyObj = p.objOf(id)
	}
	body := rs.Body
	var trigger string
	set := func(t string) {
		if trigger == "" {
			trigger = t
		}
	}
	// indexedWrite flags stores m[i] = v unless i is the range key
	// (each iteration then owns a distinct slot) or the container is
	// local to the loop body.
	indexedWrite := func(ix *ast.IndexExpr) {
		if id, ok := ix.Index.(*ast.Ident); ok && keyObj != nil && p.objOf(id) == keyObj {
			return
		}
		if root := rootIdent(ix.X); root != nil {
			if obj := p.objOf(root); obj == nil || within(obj.Pos(), body) {
				return
			}
		}
		set("and the body writes indexed state at an index other than the range key")
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if trigger != "" {
			return false
		}
		switch s := n.(type) {
		case *ast.SendStmt:
			set("and the body sends on a channel")
		case *ast.IncDecStmt:
			if ix, ok := s.X.(*ast.IndexExpr); ok {
				indexedWrite(ix)
			}
		case *ast.AssignStmt:
			if len(s.Rhs) == 1 && len(s.Lhs) == 1 {
				if call, ok := s.Rhs[0].(*ast.CallExpr); ok && p.isBuiltin(call.Fun, "append") {
					p.checkAppend(fd, body, s.Lhs[0], set)
				}
			}
			for _, lh := range s.Lhs {
				if ix, ok := lh.(*ast.IndexExpr); ok {
					indexedWrite(ix)
				}
			}
		case *ast.CallExpr:
			p.checkOutputCall(s, set)
		}
		return true
	})
	return trigger, trigger != ""
}

// checkAppend flags "dst = append(dst, ...)" when dst outlives the loop
// and is never sorted in the enclosing function (the collect-then-sort
// idiom is deterministic once sorted).
func (p *Package) checkAppend(fd *ast.FuncDecl, body *ast.BlockStmt, lhs ast.Expr, set func(string)) {
	if id, ok := lhs.(*ast.Ident); ok {
		obj := p.objOf(id)
		if obj == nil || within(obj.Pos(), body) {
			return
		}
		if p.sortedInFunc(fd, obj) {
			return
		}
		set("and the body appends to a slice that outlives the loop without a subsequent sort")
		return
	}
	// o.f = append(o.f, ...) — appending to reachable state.
	if root := rootIdent(lhs); root != nil {
		if obj := p.objOf(root); obj != nil && within(obj.Pos(), body) {
			return
		}
	}
	set("and the body appends to state that outlives the loop")
}

// sortedInFunc reports whether the function sorts the object through
// package sort or slices — the second half of collect-then-sort.
func (p *Package) sortedInFunc(fd *ast.FuncDecl, obj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (!p.selectsPackage(sel, "sort") && !p.selectsPackage(sel, "slices")) {
			return true
		}
		if root := rootIdent(call.Args[0]); root != nil && p.objOf(root) == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

// printFuncs and writerMethods identify output sinks: anything written
// per-iteration lands in iteration order.
var printFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

var writerMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

func (p *Package) checkOutputCall(call *ast.CallExpr, set func(string)) {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if (p.selectsPackage(fun, "fmt") || p.selectsPackage(fun, "log")) && printFuncs[fun.Sel.Name] {
			set("and the body writes output")
		} else if writerMethods[fun.Sel.Name] {
			set("and the body writes output")
		}
	case *ast.Ident:
		if fun.Name == "print" || fun.Name == "println" {
			if _, ok := p.objOf(fun).(*types.Builtin); ok {
				set("and the body writes output")
			}
		}
	}
}
