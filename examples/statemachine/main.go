// State machine: a self-stabilizing replicated log.
//
// The compiler is not consensus-specific: any terminating full-information
// protocol in the Figure 2 canonical form can be made self-stabilizing.
// This example compiles ReliableBroadcast — iteration i delivers the
// primary's i-th command to every replica — into a primary-based replicated
// log in the style of the state-machine approach [Sch90] that the paper
// cites as the fault-tolerance transformation.
//
// Replicas append each iteration's delivered command to their local log.
// A systemic failure corrupts every replica mid-run; piece-wise stability
// means the logs disagree only for a bounded window and then extend in
// lockstep again.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"ftss/internal/failure"
	"ftss/internal/fullinfo"
	"ftss/internal/history"
	"ftss/internal/proc"
	"ftss/internal/sim/round"
	"ftss/internal/superimpose"
)

// replica wraps a compiled Π⁺ process and materializes the delivered
// command stream into a log.
type replica struct {
	proc *superimpose.Proc
	log  map[uint64]fullinfo.Value // iteration → delivered command
}

func (r *replica) absorb() {
	if d, ok := r.proc.LastDecision(); ok && d.OK {
		r.log[d.Iteration] = d.Value
	}
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "statemachine:", err)
		os.Exit(1)
	}
}

func run() error {
	const n, f = 4, 1
	b := fullinfo.ReliableBroadcast{F: f, Initiator: 0} // p0 is the primary

	// The primary's command stream: command i is 1000+i. Non-initiators'
	// inputs are ignored by the broadcast protocol.
	commands := func(p proc.ID, iter uint64) fullinfo.Value {
		return fullinfo.Value(1000 + int64(iter))
	}

	procs, engineProcs := superimpose.Procs(b, n, commands)
	replicas := make([]*replica, n)
	for i, p := range procs {
		replicas[i] = &replica{proc: p, log: make(map[uint64]fullinfo.Value)}
	}

	// p2 is faulty: it drops 30% of its sends and receives throughout.
	adv := failure.NewRandom(failure.GeneralOmission, proc.NewSet(2), 0.3, 11, 0)
	h := history.New(n, adv.Faulty())
	engine := round.MustNewEngine(engineProcs, adv)
	engine.Observe(h)

	step := func(rounds int) {
		for i := 0; i < rounds; i++ {
			engine.Step()
			for _, r := range replicas {
				r.absorb()
			}
		}
	}

	fmt.Printf("replicated log: primary p0, %d replicas, faulty %v, Π = %s\n\n",
		n, adv.Faulty().Sorted(), b.Name())

	step(12) // 6 iterations (final_round = 2)
	printLogs(replicas, "after 12 clean rounds")

	rng := rand.New(rand.NewSource(3))
	engine.CorruptEverything(rng)
	h.MarkSystemicFailure()
	fmt.Println("*** systemic failure strikes every replica ***")
	fmt.Println()

	step(14)
	printLogs(replicas, "after 14 post-corruption rounds")

	// The correct replicas' logs must agree on every iteration all of them
	// recorded after re-stabilization.
	correct := []int{0, 1, 3}
	agreeFrom := uint64(0)
	for iter := range replicas[0].log {
		vals := map[fullinfo.Value]bool{}
		missing := false
		for _, i := range correct {
			v, ok := replicas[i].log[iter]
			if !ok {
				missing = true
				break
			}
			vals[v] = true
		}
		if !missing && len(vals) > 1 {
			if iter >= agreeFrom {
				agreeFrom = iter + 1
			}
		}
	}
	fmt.Printf("correct replicas agree on every common log entry from iteration %d on\n", agreeFrom)
	latest := replicas[0].log
	var maxIter uint64
	for it := range latest {
		if it > maxIter {
			maxIter = it
		}
	}
	if v, ok := latest[maxIter]; ok {
		fmt.Printf("latest committed command at p0: iteration %d → %d\n", maxIter, v)
	}
	return nil
}

func printLogs(rs []*replica, label string) {
	fmt.Println(label + ":")
	for i, r := range rs {
		var iters []uint64
		for it := range r.log {
			iters = append(iters, it)
		}
		// insertion sort (tiny)
		for a := 1; a < len(iters); a++ {
			for b := a; b > 0 && iters[b] < iters[b-1]; b-- {
				iters[b], iters[b-1] = iters[b-1], iters[b]
			}
		}
		fmt.Printf("  p%d log:", i)
		for _, it := range iters {
			fmt.Printf(" %d:%d", it, r.log[it])
		}
		fmt.Println()
	}
	fmt.Println()
}
