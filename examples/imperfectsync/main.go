// Imperfect synchrony: the §3 opening claim, executably.
//
// "Both the protocol for round agreement and the 'compiler' for perfectly
// synchronous systems readily adapt to synchronous, but not perfectly
// synchronized systems."
//
// This example runs three scenarios on the lagged round engine (broadcasts
// may arrive one round late):
//
//  1. Figure 1 under random lag — unchanged protocol text, exact
//     agreement re-reached after corruption (equality is absorbing).
//  2. Figure 1 under an adversarial permanently-late link — exact
//     agreement is unattainable (a 1-gap survives forever), which is why
//     the adapted problem statement is agreement-within-skew.
//  3. The double-stepped compiler: repeated consensus over 2-round
//     windows, corrupted start, omission failures, verified by the
//     standard Σ⁺ checker with doubled tiles.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"ftss/internal/core"
	"ftss/internal/failure"
	"ftss/internal/fullinfo"
	"ftss/internal/history"
	"ftss/internal/proc"
	"ftss/internal/roundagree"
	"ftss/internal/skew"
	"ftss/internal/superimpose"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "imperfectsync:", err)
		os.Exit(1)
	}
}

type lateLink struct{ from, to proc.ID }

func (l lateLink) Late(_ uint64, f, t proc.ID) bool { return f == l.from && t == l.to }

func run() error {
	// Scenario 1: random lag, corrupted clocks.
	fmt.Println("1) Figure 1 under 40% random lag, corrupted clocks")
	cs, ps := roundagree.Procs(4)
	rng := rand.New(rand.NewSource(7))
	for _, c := range cs {
		c.Corrupt(rng)
	}
	h := history.New(4, proc.NewSet())
	e := skew.MustNewEngine(ps, nil, skew.RandomLag{P: 0.4, Seed: 7})
	e.Observe(h)
	e.Run(20)
	m := core.MeasureStabilization(h, core.RoundAgreement{})
	fmt.Printf("   exact agreement re-reached %d round(s) after the event (perfect synchrony: 1)\n\n", m.Rounds)

	// Scenario 2: adversarial lag.
	fmt.Println("2) Figure 1 with a permanently late p0→p1 link")
	cs, ps = roundagree.Procs(2)
	cs[0].CorruptTo(50)
	cs[1].CorruptTo(1)
	h = history.New(2, proc.NewSet())
	e = skew.MustNewEngine(ps, nil, lateLink{from: 0, to: 1})
	e.Observe(h)
	e.Run(30)
	fmt.Printf("   after 30 rounds: c_p0=%d, c_p1=%d — a 1-gap forever\n", cs[0].Clock(), cs[1].Clock())
	within := (skew.AgreementWithinSkew{Skew: 1}).Check(h, 3, 30, proc.NewSet())
	fmt.Printf("   exact agreement: unattainable; agreement-within-1: satisfied=%v\n\n", within == nil)

	// Scenario 3: the adapted compiler.
	fmt.Println("3) Double-stepped compiler: repeated consensus over 2-round windows")
	pi := fullinfo.WavefrontConsensus{F: 1}
	in := superimpose.SeededInputs(3, 100)
	cps, eps := skew.Procs(pi, 4, in)
	rng = rand.New(rand.NewSource(3))
	for _, c := range cps {
		c.Corrupt(rng)
	}
	adv := failure.NewRandom(failure.GeneralOmission, proc.NewSet(2), 0.3, 3, 0)
	h = history.New(4, adv.Faulty())
	e = skew.MustNewEngine(eps, adv, skew.RandomLag{P: 0.35, Seed: 3})
	e.Observe(h)
	e.Run(50)

	sigma := superimpose.RepeatedConsensus{FinalRound: skew.TileWidth(pi), Inputs: in}
	if err := core.CheckFTSS(h, sigma, 12); err != nil {
		return fmt.Errorf("adapted compiler failed: %w", err)
	}
	d, _ := cps[0].LastDecision()
	fmt.Printf("   Σ⁺ satisfied under lag+omissions+corruption; latest decision %d for iteration %d\n",
		d.Value, d.Iteration)
	return nil
}
