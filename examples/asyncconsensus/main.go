// Async consensus: the paper's §3 pipeline end to end.
//
// An Eventually Weak failure detector (simulated oracle honoring exactly
// the ◊W axioms) is strengthened into an Eventually Strong one with the
// initialization-free Figure 4 transform, and the strengthened detector
// drives a Chandra–Toueg consensus hardened with the paper's superimposed
// mechanisms (periodic re-send, round agreement, sanitization, decision
// gossip).
//
// The example starts every process from a CORRUPTED state, crashes two of
// five processes, and shows the decision registers converging to a stable
// common value — then runs the unmodified [CT91] baseline from the same
// corrupted state to show why the mechanisms are needed.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"ftss/internal/ctcons"
	"ftss/internal/detector"
	"ftss/internal/proc"
	"ftss/internal/sim/async"
)

const ms = async.Millisecond

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "asyncconsensus:", err)
		os.Exit(1)
	}
}

func run() error {
	const n = 5
	crashAt := map[proc.ID]async.Time{3: 25 * ms, 4: 40 * ms}
	weak := &detector.SimulatedWeak{
		N: n, CrashAt: crashAt,
		AccuracyAt: 30 * ms, Lag: 3 * ms,
		NoiseP: 0.25, SlanderP: 0.15, Seed: 5,
	}
	inputs := []ctcons.Value{700, 11, 420, 93, 256}

	outcome := func(name string, cfg ctcons.Config) error {
		cs, aps := ctcons.Procs(n, inputs, cfg, weak)
		e := async.MustNewEngine(aps, async.Config{
			Seed: 5, TickEvery: ms, MinDelay: ms, MaxDelay: 3 * ms, CrashAt: crashAt,
		})
		rng := rand.New(rand.NewSource(123))
		for _, c := range cs {
			c.Corrupt(rng)
		}
		fmt.Printf("--- %s, all processes corrupted, p3/p4 will crash ---\n", name)
		for _, at := range []async.Time{50 * ms, 200 * ms, 800 * ms} {
			e.RunUntil(at)
			fmt.Printf("  t=%3dms:", at/ms)
			for _, c := range cs {
				if e.Crashed().Has(c.ID()) {
					fmt.Printf("  p%d=†", c.ID())
					continue
				}
				if v, _, ok := c.Decision(); ok {
					fmt.Printf("  p%d=%d", c.ID(), v)
				} else {
					fmt.Printf("  p%d=?", c.ID())
				}
			}
			fmt.Println()
		}

		samples := []ctcons.DecisionSample{ctcons.SnapshotDecisions(e.Now(), cs)}
		e.RunUntil(1500 * ms)
		samples = append(samples, ctcons.SnapshotDecisions(e.Now(), cs))
		out, err := ctcons.VerifyStableAgreement(samples, e.Correct())
		if err != nil {
			fmt.Printf("  verdict: %v\n\n", err)
			return err
		}
		fmt.Printf("  verdict: stable agreement on %d\n\n", out.Value)
		return nil
	}

	if err := outcome("stabilizing protocol (§3)", ctcons.Stabilizing()); err != nil {
		return fmt.Errorf("the stabilizing protocol must converge: %w", err)
	}
	if err := outcome("plain [CT91] baseline", ctcons.Baseline()); err == nil {
		fmt.Println("note: the baseline happened to survive this corruption pattern;")
		fmt.Println("rerun with other seeds (see experiment E6) to watch it deadlock.")
	} else {
		fmt.Println("the baseline failed exactly as §3 predicts; the paper's")
		fmt.Println("superimposition (re-send + round agreement) is what repairs it.")
	}
	return nil
}
