// Quickstart: compile a fault-tolerant protocol into a self-stabilizing
// one.
//
// This example takes the paper's whole pipeline in ~60 lines:
//
//  1. Pick a terminating protocol Π that ft-solves Consensus under
//     general-omission process failures (wavefront consensus, Figure 2
//     canonical form).
//  2. Compile it with the Figure 3 superimposition into Π⁺, which repeats
//     Π forever and additionally tolerates systemic failures.
//  3. Run Π⁺ on the synchronous simulator with an omission adversary,
//     corrupt the memory of every process mid-run, and watch the system
//     re-stabilize within final_round rounds (Theorem 4).
//  4. Check the execution against Definition 2.4 (piece-wise stability).
package main

import (
	"fmt"
	"math/rand"
	"os"

	"ftss/internal/core"
	"ftss/internal/failure"
	"ftss/internal/fullinfo"
	"ftss/internal/history"
	"ftss/internal/proc"
	"ftss/internal/sim/round"
	"ftss/internal/superimpose"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	const n = 5
	pi := fullinfo.WavefrontConsensus{F: 2} // tolerates 2 omission-faulty processes
	inputs := superimpose.SeededInputs(42, 100)

	// p1 and p3 are faulty: they randomly drop sends and receives.
	adv := failure.NewRandom(failure.GeneralOmission, proc.NewSet(1, 3), 0.3, 7, 0)

	// Compile Π into Π⁺ and wire up the engine with a recorded history.
	procs, engineProcs := superimpose.Procs(pi, n, inputs)
	h := history.New(n, adv.Faulty())
	engine := round.MustNewEngine(engineProcs, adv)
	engine.Observe(h)

	fmt.Printf("Π = %s (final_round %d), compiled to Π⁺; n=%d, faulty %v\n\n",
		pi.Name(), pi.FinalRound(), n, adv.Faulty().Sorted())

	show := func(r int) {
		c, _ := procs[0].LastDecision()
		fmt.Printf("  round %2d: p0 clock=%-4d latest decision iter=%d value=%d\n",
			r, procs[0].Clock(), c.Iteration, c.Value)
	}

	// Phase 1: ten clean rounds — repeated consensus hums along.
	engine.Run(10)
	fmt.Println("after 10 rounds from the good initial state:")
	show(10)

	// Phase 2: systemic failure — every process's memory is struck.
	rng := rand.New(rand.NewSource(99))
	engine.CorruptEverything(rng)
	h.MarkSystemicFailure()
	fmt.Println("\n*** systemic failure: all 5 processes corrupted ***")
	fmt.Printf("  p0 clock is now %d\n", procs[0].Clock())

	// Phase 3: the superimposed round agreement pulls everyone back into a
	// common iteration within final_round rounds, despite the continuing
	// omission failures of p1 and p3.
	engine.Run(20)
	fmt.Println("\nafter 20 more rounds:")
	show(30)

	// Phase 4: the formal verdict.
	sigma := superimpose.RepeatedConsensus{FinalRound: pi.FinalRound(), Inputs: inputs}
	if err := core.CheckFTSS(h, sigma, pi.FinalRound()); err != nil {
		return fmt.Errorf("Definition 2.4 violated: %w", err)
	}
	m := core.MeasureStabilization(h, sigma)
	fmt.Printf("\nDefinition 2.4: Π⁺ ftss-solves repeated consensus (stab ≤ %d)\n", pi.FinalRound())
	fmt.Printf("measured stabilization after the corruption: %d round(s)\n", m.Rounds)
	return nil
}
