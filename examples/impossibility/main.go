// Impossibility: executable versions of the paper's two scenario proofs.
//
// Theorem 1 — a faulty process can delay revealing itself past any claimed
// stabilization bound r, so the "natural" Tentative Definition 1 (Σ must
// hold on the r-suffix with the final faulty set) is unachievable; the
// paper's piece-wise stability (Definition 2.4) charges the revelation to a
// coterie change instead and is achievable with stabilization 1 (Theorem 3).
//
// Theorem 2 — a protocol that restricts the behavior of faulty processes
// ("self-check and halt before doing any harm", Assumption 2) faces two
// locally indistinguishable worlds: halting is mandatory in one and fatal
// in the other, so no uniform protocol ftss-solves anything.
package main

import (
	"fmt"
	"os"

	"ftss/internal/core"
	"ftss/internal/failure"
	"ftss/internal/history"
	"ftss/internal/proc"
	"ftss/internal/roundagree"
	"ftss/internal/sim/round"
)

func main() {
	theorem1()
	theorem2()
}

func theorem1() {
	fmt.Println("=== Theorem 1: no finite stabilization time under the tentative definition ===")
	fmt.Println()
	for _, r := range []int{2, 8, 32} {
		// Corrupted clocks; the faulty p1 blocks all communication with p0
		// for rounds 1..r, then behaves.
		adv := failure.NewScripted(1).SilenceBetween(1, 0, 1, uint64(r))
		cs, ps := roundagree.Procs(2)
		cs[0].CorruptTo(10)
		cs[1].CorruptTo(1_000_000)

		h := history.New(2, adv.Faulty())
		e := round.MustNewEngine(ps, adv)
		e.Observe(h)
		e.Run(r + 8)

		tent := core.CheckTentative(h, core.RoundAgreement{}, r)
		ftss := core.CheckFTSS(h, core.RoundAgreement{}, 1)
		fmt.Printf("claimed stabilization r=%-2d → tentative definition: %v\n", r, tent)
		fmt.Printf("                          piece-wise stability (stab 1): satisfied=%v\n", ftss == nil)
		fmt.Println()
	}
	fmt.Println("for every r the adversary pushes the violation to round r+1 —")
	fmt.Println("exactly the proof's scenario; Definition 2.4 charges it to the")
	fmt.Println("coterie change when p1 finally communicates.")
	fmt.Println()
}

func theorem2() {
	fmt.Println("=== Theorem 2: uniform protocols cannot ftss-solve ===")
	fmt.Println()

	// The uniform round agreement halts any process that sees a higher
	// clock ("self-check and halt before doing harm").

	// World 1: p0 is faulty and never communicates. For uniformity p0 must
	// halt or agree — it never hears the evidence, so uniformity fails.
	us := []*roundagree.Uniform{roundagree.NewUniformAt(0, 3), roundagree.NewUniformAt(1, 900)}
	adv := failure.NewScripted(0).SilenceBetween(0, 1, 1, 50)
	h := history.New(2, adv.Faulty())
	e := round.MustNewEngine([]round.Process{us[0], us[1]}, adv)
	e.Observe(h)
	e.Run(20)
	fmt.Printf("world 1 (p0 faulty, silent):   p0 halted=%v, uniformity holds=%v\n",
		us[0].Halted(), core.CheckFTSS(h, core.Uniformity{}, 1) == nil)

	// World 2: both processes are correct; only a systemic failure made
	// their clocks differ. p0's self-check fires, a CORRECT process halts,
	// and round agreement is violated for the rest of time.
	us = []*roundagree.Uniform{roundagree.NewUniformAt(0, 3), roundagree.NewUniformAt(1, 900)}
	h = history.New(2, proc.NewSet())
	e = round.MustNewEngine([]round.Process{us[0], us[1]}, nil)
	e.Observe(h)
	e.Run(20)
	fmt.Printf("world 2 (both correct):        p0 halted=%v, Σ ftss-holds=%v\n",
		us[0].Halted(), core.CheckFTSS(h, core.RoundAgreement{}, 1) == nil)

	fmt.Println()
	fmt.Println("the self-check satisfies Assumption 2 only by sacrificing world 2;")
	fmt.Println("omitting it sacrifices world 1 — no protocol wins both (Theorem 2).")

	if us[0].Halted() {
		os.Exit(0)
	}
}
